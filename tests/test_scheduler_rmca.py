"""Tests for the RMCA scheduler's memory-aware cluster selection."""

import pytest

from repro.cme import AnalyticCME, SamplingCME
from repro.ir import LoopBuilder
from repro.machine import two_cluster
from repro.scheduler import BaselineScheduler, RMCAScheduler, SchedulerConfig
from repro.workloads import motivating_kernel, motivating_machine


class TestConstruction:
    def test_requires_locality(self):
        with pytest.raises(ValueError, match="requires a locality analyzer"):
            RMCAScheduler(None)

    def test_name(self, sampling_cme):
        assert RMCAScheduler(sampling_cme).name == "rmca"


class TestClusterSelection:
    def test_groups_conflicting_streams_apart(self, sampling_cme):
        """The motivating example: RMCA separates the B and C streams."""
        kernel = motivating_kernel()
        machine = motivating_machine()
        schedule = RMCAScheduler(sampling_cme).schedule(kernel, machine)
        schedule.validate()
        assert schedule.cluster_of("ld1") == schedule.cluster_of("ld3")
        assert schedule.cluster_of("ld2") == schedule.cluster_of("ld4")
        assert schedule.cluster_of("ld1") != schedule.cluster_of("ld2")

    def test_baseline_does_not_separate(self, sampling_cme):
        """The register heuristic has no reason to split the streams."""
        kernel = motivating_kernel()
        machine = motivating_machine()
        schedule = BaselineScheduler(locality=sampling_cme).schedule(
            kernel, machine
        )
        schedule.validate()
        clusters = {schedule.cluster_of(op) for op in ("ld1", "ld2", "ld3", "ld4")}
        # All four loads land together (the greedy register-optimal
        # outcome), which keeps the ping-pong alive.
        assert len(clusters) == 1

    def test_keeps_group_reuse_together(self, sampling_cme):
        """Uniformly generated references co-locate under RMCA."""
        b = LoopBuilder("group")
        i = b.dim("i", 0, 128)
        a = b.array("A", (256,))
        other = b.array("B", (256,))
        lead = b.load(a, [b.aff(i=1)], name="lead")
        follow = b.load(a, [b.aff(1, i=1)], name="follow")
        noise = b.load(other, [b.aff(i=1)], name="noise")
        t = b.fadd(lead, follow, name="sum")
        u = b.fmul(t, noise, name="scale")
        b.store(other, [b.aff(i=1)], u, name="st")
        kernel = b.build()
        schedule = RMCAScheduler(sampling_cme).schedule(kernel, two_cluster())
        schedule.validate()
        assert schedule.cluster_of("lead") == schedule.cluster_of("follow")

    def test_non_memory_ops_use_register_heuristic(self, sampling_cme):
        """RMCA and Baseline place a pure-arithmetic kernel identically."""
        b = LoopBuilder("arith")
        i = b.dim("i", 0, 64)
        a = b.array("A", (64,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        for k in range(4):
            v = b.fadd(v, v, name=f"add{k}")
        b.store(a, [b.aff(i=1)], v, name="st")
        kernel = b.build()
        machine = two_cluster()
        rmca = RMCAScheduler(sampling_cme).schedule(kernel, machine)
        base = BaselineScheduler(locality=sampling_cme).schedule(kernel, machine)
        arith_ops = [f"add{k}" for k in range(4)]
        assert [rmca.cluster_of(o) for o in arith_ops] == [
            base.cluster_of(o) for o in arith_ops
        ]

    def test_works_with_analytic_backend(self):
        kernel = motivating_kernel()
        machine = motivating_machine()
        schedule = RMCAScheduler(AnalyticCME()).schedule(kernel, machine)
        schedule.validate()
        assert schedule.cluster_of("ld1") == schedule.cluster_of("ld3")


class TestEndToEndAdvantage:
    def test_rmca_beats_baseline_on_motivating_kernel(self, sampling_cme):
        from repro.simulator import simulate

        kernel = motivating_kernel()
        machine = motivating_machine()
        rmca = simulate(RMCAScheduler(sampling_cme).schedule(kernel, machine))
        base = simulate(
            BaselineScheduler(locality=sampling_cme).schedule(kernel, machine)
        )
        assert rmca.total_cycles < base.total_cycles

    def test_threshold_passed_through(self, sampling_cme):
        kernel = motivating_kernel()
        machine = motivating_machine()
        config = SchedulerConfig(threshold=0.25)
        schedule = RMCAScheduler(sampling_cme, config).schedule(kernel, machine)
        assert schedule.threshold == 0.25
