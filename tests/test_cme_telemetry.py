"""Stage telemetry: the batched CME path is observably exercised.

The CI ``cme-equivalence`` job runs this as its perf smoke — no timing
assertions (CI machines vary), but hard assertions that the schedule
stage actually went through the incremental engine's batched probes,
which is what the recorded speedups rely on.
"""

from repro.cme import IncrementalCME
from repro.engine import CellPipeline, CellRequest
from repro.machine.presets import two_cluster


def _outcome(locality=None):
    return CellPipeline().run(
        CellRequest(
            kernel="tomcatv",
            machine=two_cluster(),
            scheduler="rmca",
            threshold=0.25,
            locality=locality,
            n_iterations=8,
            n_times=1,
        )
    )


def test_schedule_stage_reports_batched_cme_telemetry():
    analyzer = IncrementalCME(max_points=512)
    record = _outcome(analyzer).report.stage("schedule")
    stats = record.stats
    # The batched cluster sweep fired, and it did real incremental work.
    assert stats["cme_batched_calls"] > 0
    assert stats["cme_probes"] > 0
    assert stats["cme_extensions"] > 0
    assert stats["cme_address_traces"] >= 1
    assert record.seconds >= 0.0
    # A second cell on the same analyzer is served from warm state:
    # no new traces, probes answered from the memo.
    warm = _outcome(analyzer).report.stage("schedule").stats
    assert warm["cme_address_traces"] == 0
    assert warm["cme_memo_hits"] > 0
    assert warm["cme_probes"] == 0


def test_default_analyzer_is_the_incremental_engine():
    """A request without an explicit analyzer runs the incremental
    engine (the analyze stage attaches the default)."""
    outcome = _outcome(locality=None)
    stats = outcome.report.stage("schedule").stats
    assert stats["cme_batched_calls"] > 0
    analyze = outcome.report.stage("analyze").stats
    assert analyze["analyzer"].startswith("sampling:")
