"""Tests for the LocalityAnalyzer protocol and backend agreement."""

import pytest

from repro.cme import (
    AnalyticCME,
    IncrementalCME,
    LocalityAnalyzer,
    SamplingCME,
    default_analyzer,
)
from repro.ir import LoopBuilder
from repro.machine.config import CacheConfig


class TestProtocol:
    def test_both_backends_satisfy_protocol(self):
        assert isinstance(SamplingCME(), LocalityAnalyzer)
        assert isinstance(AnalyticCME(), LocalityAnalyzer)

    def test_default_analyzer_is_the_incremental_sampled_engine(self):
        analyzer = default_analyzer()
        assert isinstance(analyzer, IncrementalCME)
        assert isinstance(analyzer, LocalityAnalyzer)
        # Same fingerprint as the from-scratch reference: the engines
        # are bit-identical and their cache entries interchangeable.
        assert analyzer.name == "sampling"

    def test_default_analyzer_max_points(self):
        assert default_analyzer(max_points=99).max_points == 99


class TestBackendAgreement:
    """The two backends should agree on the clear-cut cases the RMCA
    scheduler's decisions hinge on."""

    def _cases(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 64)
        x = b.array("X", (64,), base=0)
        y = b.array("Y", (64,), base=1024)  # same image as X: ping-pong
        b.load(x, [b.aff(i=1)], name="ld_x")
        b.load(y, [b.aff(i=1)], name="ld_y")
        return b.build(), CacheConfig(size=1024, line_size=32)

    def test_pingpong_both_full_miss(self):
        kernel, cache = self._cases()
        ops = kernel.loop.memory_operations
        for backend in (SamplingCME(max_points=128), AnalyticCME()):
            for op in ops:
                assert backend.miss_ratio(kernel.loop, op, ops, cache) == 1.0

    def test_isolated_stream_both_spatial(self):
        kernel, cache = self._cases()
        ld_x = kernel.loop.operation("ld_x")
        for backend in (SamplingCME(max_points=128), AnalyticCME()):
            ratio = backend.miss_ratio(kernel.loop, ld_x, [ld_x], cache)
            assert 0.1 < ratio < 0.4

    def test_split_beats_colocation_for_both(self):
        """The motivating-example decision: misses(split) < misses(together)."""
        kernel, cache = self._cases()
        ops = list(kernel.loop.memory_operations)
        for backend in (SamplingCME(max_points=128), AnalyticCME()):
            together = backend.miss_count(kernel.loop, ops, cache)
            split = backend.miss_count(
                kernel.loop, ops[:1], cache
            ) + backend.miss_count(kernel.loop, ops[1:], cache)
            assert split < together
