"""The Section 3 motivating example: kernel and machine.

The paper motivates RMCA with the loop::

    DO I = 1, N, 2
        A(I) = B(I)*C(I) + B(I+1)*C(I+1)
    ENDDO

on a 2-cluster machine where each cluster has one arithmetic unit
(2-cycle latency) and one memory unit, one register bus with 2-cycle
latency, 2-cycle local caches, a 2-cycle memory bus and 10-cycle main
memory.  Arrays B and C are deliberately placed a multiple of the local
cache size apart so that, in a direct-mapped cache, ``B(I)`` and ``C(I)``
ping-pong on the same set: a scheduler that splits each B/C pair across
clusters by register affinity (Figure 3a) makes every access miss, while
the locality-aware assignment (Figure 3b) keeps each array's stream in
one cluster and recovers the spatial reuse at the cost of one extra II.

The paper's closed forms for the two schedules are::

    NCYCLE_total(a) = NTIMES * (15*N + 9)     # II=3, SC=4, all-miss
    NCYCLE_total(b) = NTIMES * (10*N + 8)     # II=4, SC=3, 25% miss

an asymptotic 1.5x advantage for the locality-aware schedule.
"""

from __future__ import annotations

from typing import Tuple

from ..ir.builder import Kernel, LoopBuilder
from ..machine.config import (
    BusConfig,
    CacheConfig,
    ClusterConfig,
    MachineConfig,
)
from ..ir.operations import OpClass
from ..scheduler.result import Communication, Placement, Schedule

__all__ = [
    "MOTIVATING_CACHE_BYTES",
    "motivating_kernel",
    "motivating_machine",
    "figure3a_schedule",
    "figure3b_schedule",
    "paper_total_cycles_a",
    "paper_total_cycles_b",
]

#: Local cache size of the Section 3 machine.  The paper does not give a
#: number; 2KB keeps the arrays small while preserving the ping-pong
#: placement (B and C exactly one cache-image apart).
MOTIVATING_CACHE_BYTES = 2 * 1024


def motivating_kernel(
    n: int = 128, cache_bytes: int = MOTIVATING_CACHE_BYTES
) -> Kernel:
    """The DO I=1,N,2 loop with B and C one cache-image apart.

    ``n`` is the Fortran trip count N; the builder loop runs I over
    ``range(0, n, 2)`` (0-based).  B and C are exactly one cache image
    apart (the ping-pong placement); A occupies the *other half* of the
    cache image so the stores never interfere with the B/C conflict the
    example is about.  That requires the touched footprint of each array
    to fit half the cache.
    """
    if n % 2 != 0:
        raise ValueError("n must be even (the loop steps by 2)")
    if n * 8 > cache_bytes // 2:
        raise ValueError(
            f"n={n} doubles must fit half the {cache_bytes}-byte cache "
            f"image so A can avoid the B/C sets"
        )
    b = LoopBuilder("motivating")
    i = b.dim("i", 0, n, step=2)
    arr_b = b.array("B", (n,), base=0)
    arr_c = b.array("C", (n,), base=cache_bytes)
    arr_a = b.array("A", (n,), base=2 * cache_bytes + cache_bytes // 2)

    ld1 = b.load(arr_b, [b.aff(i=1)], name="ld1")
    ld2 = b.load(arr_c, [b.aff(i=1)], name="ld2")
    ld3 = b.load(arr_b, [b.aff(1, i=1)], name="ld3")
    ld4 = b.load(arr_c, [b.aff(1, i=1)], name="ld4")
    mul1 = b.fmul(ld1, ld2, name="mul1")
    mul2 = b.fmul(ld3, ld4, name="mul2")
    add = b.fadd(mul1, mul2, name="add")
    b.store(arr_a, [b.aff(i=1)], add, name="st")
    return b.build()


def motivating_machine() -> MachineConfig:
    """The 2-cluster machine of Section 3."""
    cache = CacheConfig(
        size=MOTIVATING_CACHE_BYTES,
        line_size=64,  # eight 8-byte elements per block, per the paper
        associativity=1,
        mshr_entries=10,
        hit_latency=2,
    )
    cluster = ClusterConfig(
        n_integer=0,
        n_fp=1,
        n_memory=1,
        n_registers=32,
        cache=cache,
    )
    latencies = {oc: 1 for oc in OpClass}
    latencies[OpClass.FADD] = 2
    latencies[OpClass.FSUB] = 2
    latencies[OpClass.FMUL] = 2
    latencies[OpClass.LOAD] = 2
    latencies[OpClass.STORE] = 1
    return MachineConfig(
        name="motivating-2c",
        clusters=(cluster, cluster),
        register_bus=BusConfig(count=1, latency=2),
        memory_bus=BusConfig(count=None, latency=2),
        main_memory_latency=10,
        latencies=latencies,
    )


def _manual_schedule(
    kernel: Kernel,
    machine: MachineConfig,
    ii: int,
    placements: dict,
    comms: list,
    name: str,
) -> Schedule:
    schedule = Schedule(
        kernel=kernel,
        machine=machine,
        ii=ii,
        placements={
            op: Placement(
                op=op,
                cluster=cluster,
                time=time,
                assumed_latency=machine.latency(
                    kernel.loop.operation(op).opclass
                ),
            )
            for op, (cluster, time) in placements.items()
        },
        communications=[
            Communication(
                producer=producer,
                src_cluster=src,
                dst_cluster=dst,
                bus=0,
                start=start,
                latency=machine.register_bus.latency,
            )
            for producer, src, dst, start in comms
        ],
        mii=3,
        res_mii=3,
        rec_mii=1,
        scheduler_name=name,
    )
    schedule.validate()
    return schedule


def figure3a_schedule(
    kernel: Kernel, machine: MachineConfig
) -> Schedule:
    """The hand-crafted *register-optimal* schedule of Figure 3(a).

    Cluster 0 holds LD1/LD2/MUL1, cluster 1 the rest; one inter-cluster
    communication (MUL1 → ADD) per iteration; II = 3, SC = 4.  Because
    each cluster mixes a B-stream with a C-stream and the two arrays are
    one cache-image apart, every load ping-pongs and misses.
    """
    placements = {
        "ld1": (0, 0),
        "ld2": (0, 1),
        "mul1": (0, 3),
        "ld3": (1, 0),
        "ld4": (1, 1),
        "mul2": (1, 3),
        "add": (1, 7),
        "st": (1, 11),
    }
    comms = [("mul1", 0, 1, 5)]
    return _manual_schedule(kernel, machine, 3, placements, comms, "figure3a")


def figure3b_schedule(
    kernel: Kernel, machine: MachineConfig
) -> Schedule:
    """The hand-crafted *locality-aware* schedule of Figure 3(b).

    LD1/LD3 (the B stream) share cluster 0 with the arithmetic, LD2/LD4
    (the C stream) sit in cluster 1; two communications per iteration
    force II = 4 but the ping-pong disappears, leaving the 25% spatial
    miss ratio the paper computes; SC = 3.
    """
    placements = {
        "ld1": (0, 0),
        "ld3": (0, 1),
        "ld2": (1, 0),
        "ld4": (1, 1),
        "mul1": (0, 4),
        "mul2": (0, 6),
        "add": (0, 9),
        "st": (0, 11),
    }
    comms = [("ld2", 1, 0, 2), ("ld4", 1, 0, 4)]
    return _manual_schedule(kernel, machine, 4, placements, comms, "figure3b")


def paper_total_cycles_a(niter: int, ntimes: int = 1) -> int:
    """Closed-form total cycles of the register-optimal schedule (3a).

    ``niter`` is the kernel trip count — the quantity the paper calls N
    in its Section 3 formulas (it plugs N into the NITER slot of the
    NCYCLE_compute expression).
    """
    return ntimes * (15 * niter + 9)


def paper_total_cycles_b(niter: int, ntimes: int = 1) -> int:
    """Closed-form total cycles of the locality-aware schedule (3b)."""
    return ntimes * (10 * niter + 8)
