"""Unit tests for the LoopBuilder DSL."""

import pytest

from repro.ir import LoopBuilder, OpClass


class TestStructure:
    def test_requires_dims(self):
        b = LoopBuilder("empty")
        with pytest.raises(ValueError, match="no loop dimensions"):
            b.build()

    def test_duplicate_dim_rejected(self):
        b = LoopBuilder("k")
        b.dim("i", 0, 4)
        with pytest.raises(ValueError, match="duplicate loop variable"):
            b.dim("i", 0, 8)

    def test_duplicate_array_rejected(self):
        b = LoopBuilder("k")
        b.array("A", (8,))
        with pytest.raises(ValueError, match="duplicate array"):
            b.array("A", (8,))

    def test_arrays_packed_without_overlap(self):
        b = LoopBuilder("k")
        a = b.array("A", (8,))      # 64 bytes
        c = b.array("B", (8,))
        assert c.base >= a.base + a.size_bytes

    def test_explicit_base_respected(self):
        b = LoopBuilder("k")
        arr = b.array("A", (8,), base=4096)
        assert arr.base == 4096

    def test_packing_alignment(self):
        b = LoopBuilder("k")
        b.array("A", (1,))  # 8 bytes
        c = b.array("B", (8,), align=64)
        assert c.base % 64 == 0


class TestEmission:
    def test_load_creates_ref(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(i=1)])
        kernel = b.build()
        assert len(kernel.loop.refs) == 1
        assert kernel.loop.refs[0].array.name == "A"
        assert not kernel.loop.refs[0].is_store

    def test_store_creates_store_ref(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(i=1)])
        b.store(a, [b.aff(i=1)], v)
        kernel = b.build()
        assert kernel.loop.refs[1].is_store

    def test_auto_names_unique(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v1 = b.load(a, [b.aff(i=1)])
        v2 = b.load(a, [b.aff(1, i=1)])
        s = b.fadd(v1, v2)
        kernel = b.build()
        names = [op.name for op in kernel.loop.operations]
        assert len(set(names)) == len(names)

    def test_explicit_names_and_dests(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(i=1)], name="myload", dest="r1")
        assert v.reg == "r1"
        kernel = b.build()
        assert kernel.loop.operation("myload").dest == "r1"

    def test_all_binary_helpers(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(i=1)])
        results = [
            b.iadd(v, v), b.isub(v, v), b.imul(v, v),
            b.fadd(v, v), b.fsub(v, v), b.fmul(v, v), b.fdiv(v, v),
        ]
        neg = b.fneg(v)
        kernel = b.build()
        classes = [op.opclass for op in kernel.loop.operations]
        for expected in (OpClass.IADD, OpClass.ISUB, OpClass.IMUL,
                         OpClass.FADD, OpClass.FSUB, OpClass.FMUL,
                         OpClass.FDIV, OpClass.FNEG):
            assert expected in classes

    def test_live_in_has_no_producer(self):
        b = LoopBuilder("k")
        value = b.live_in("alpha")
        assert value.producer is None
        assert b.fconst("beta").producer is None


class TestDependences:
    def test_intra_iteration_flow(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        s = b.fadd(v, v, name="add")
        kernel = b.build()
        flows = {(e.src, e.dst) for e in kernel.ddg.register_edges()}
        assert ("ld", "add") in flows

    def test_prev_value_creates_recurrence(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        acc = b.fadd(b.prev_value("acc", distance=2), v, dest="acc", name="accum")
        kernel = b.build()
        carried = [
            e for e in kernel.ddg.register_edges() if e.distance == 2
        ]
        assert len(carried) == 1
        assert carried[0].src == "accum"
        assert carried[0].dst == "accum"
        assert kernel.ddg.has_recurrences()

    def test_prev_on_value_creates_cross_op_recurrence(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        t = b.fmul(v, v, name="mul", dest="t")
        u = b.fadd(b.prev(t, distance=1), v, name="use_prev")
        kernel = b.build()
        carried = [e for e in kernel.ddg.register_edges() if e.distance == 1]
        assert ("mul", "use_prev") in {(e.src, e.dst) for e in carried}

    def test_prev_of_live_in_is_noop(self):
        b = LoopBuilder("k")
        alpha = b.live_in("alpha")
        assert b.prev(alpha) is alpha

    def test_prev_distance_validated(self):
        b = LoopBuilder("k")
        with pytest.raises(ValueError):
            b.prev_value("x", distance=0)

    def test_unresolved_forward_reference(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(i=1)])
        b.fadd(b.prev_value("never_defined"), v)
        with pytest.raises(ValueError, match="never defined"):
            b.build()

    def test_mem_dep_edge(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 8)
        a = b.array("A", (8,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        b.store(a, [b.aff(i=1)], v, name="st")
        b.mem_dep("st", "ld", distance=1)
        kernel = b.build()
        mems = [(e.src, e.dst) for e in kernel.ddg.edges() if e.kind == "mem"]
        assert ("st", "ld") in mems


class TestKernel:
    def test_kernel_name(self):
        b = LoopBuilder("mykernel")
        b.dim("i", 0, 4)
        a = b.array("A", (4,))
        b.store(a, [b.aff(i=1)], b.live_in("c"))
        kernel = b.build()
        assert kernel.name == "mykernel"
        assert kernel.loop.name == "mykernel"
