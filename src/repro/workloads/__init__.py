"""Workload substrate: SPECfp95-style kernels, the motivating example and
a random kernel generator."""

from .dsp import DSP_KERNELS, dsp_suite
from .generator import GeneratorConfig, random_kernel
from .kernels import (
    applu,
    apsi,
    hydro2d,
    mgrid,
    su2cor,
    swim,
    tomcatv,
    turb3d,
)
from .motivating import (
    MOTIVATING_CACHE_BYTES,
    figure3a_schedule,
    figure3b_schedule,
    motivating_kernel,
    motivating_machine,
    paper_total_cycles_a,
    paper_total_cycles_b,
)
from .suite import SPEC_KERNELS, kernel_by_name, spec_suite, suite_stats

__all__ = [
    "DSP_KERNELS",
    "GeneratorConfig",
    "MOTIVATING_CACHE_BYTES",
    "SPEC_KERNELS",
    "figure3a_schedule",
    "figure3b_schedule",
    "applu",
    "apsi",
    "dsp_suite",
    "hydro2d",
    "kernel_by_name",
    "mgrid",
    "motivating_kernel",
    "motivating_machine",
    "paper_total_cycles_a",
    "paper_total_cycles_b",
    "random_kernel",
    "spec_suite",
    "su2cor",
    "suite_stats",
    "swim",
    "tomcatv",
    "turb3d",
]
