"""Unit tests for the memory-bus pool."""

import pytest

from repro.machine.config import BusConfig
from repro.memory.membus import MemoryBusPool


class TestBoundedPool:
    def test_immediate_grant_when_idle(self):
        pool = MemoryBusPool(BusConfig(count=1, latency=2))
        assert pool.acquire(10) == 10

    def test_queues_when_busy(self):
        pool = MemoryBusPool(BusConfig(count=1, latency=2))
        assert pool.acquire(0) == 0     # busy until 2
        assert pool.acquire(0) == 2     # waits
        assert pool.total_wait_cycles == 2

    def test_two_buses_in_parallel(self):
        pool = MemoryBusPool(BusConfig(count=2, latency=4))
        assert pool.acquire(0) == 0
        assert pool.acquire(0) == 0     # second bus
        assert pool.acquire(0) == 4     # now both busy

    def test_custom_duration(self):
        pool = MemoryBusPool(BusConfig(count=1, latency=1))
        pool.acquire(0, duration=10)
        assert pool.acquire(0) == 10

    def test_later_request_no_wait(self):
        pool = MemoryBusPool(BusConfig(count=1, latency=2))
        pool.acquire(0)
        assert pool.acquire(5) == 5
        assert pool.total_wait_cycles == 0

    def test_stats(self):
        pool = MemoryBusPool(BusConfig(count=1, latency=3))
        pool.acquire(0)
        pool.acquire(0)
        assert pool.total_transactions == 2
        assert pool.total_busy_cycles == 6
        pool.reset_stats()
        assert pool.total_transactions == 0
        assert pool.total_wait_cycles == 0


class TestUnboundedPool:
    def test_never_waits(self):
        pool = MemoryBusPool(BusConfig(count=None, latency=4))
        for k in range(32):
            assert pool.acquire(0) == 0
        assert pool.total_wait_cycles == 0
        assert pool.total_transactions == 32

    def test_latency_property(self):
        assert MemoryBusPool(BusConfig(count=None, latency=4)).latency == 4
