"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cme.sampling import _FunctionalCache
from repro.ir.references import AffineExpr, Array, ArrayReference
from repro.machine import two_cluster, unified
from repro.machine.config import CacheConfig
from repro.memory.cache import ClusterCache, LineState
from repro.memory.coherence import BusOp, MSIController
from repro.scheduler import BaselineScheduler
from repro.scheduler.lifetimes import cluster_pressures
from repro.scheduler.mii import compute_mii
from repro.simulator import simulate
from repro.workloads import GeneratorConfig, random_kernel

_SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Affine expressions / references
# ---------------------------------------------------------------------------
@given(
    constant=st.integers(-100, 100),
    ci=st.integers(-5, 5),
    cj=st.integers(-5, 5),
    i=st.integers(-50, 50),
    j=st.integers(-50, 50),
)
def test_affine_evaluation_is_linear(constant, ci, cj, i, j):
    expr = AffineExpr.of(constant, i=ci, j=cj)
    assert expr.evaluate({"i": i, "j": j}) == constant + ci * i + cj * j


@given(
    constant=st.integers(-100, 100),
    delta=st.integers(-100, 100),
    ci=st.integers(-5, 5),
    i=st.integers(-50, 50),
)
def test_affine_shift_commutes_with_evaluation(constant, delta, ci, i):
    expr = AffineExpr.of(constant, i=ci)
    assert expr.shifted(delta).evaluate({"i": i}) == expr.evaluate({"i": i}) + delta


@given(
    shape=st.lists(st.integers(1, 8), min_size=1, max_size=3),
    element_size=st.sampled_from([4, 8]),
    base=st.integers(0, 4096),
)
def test_array_addresses_within_footprint(shape, element_size, base):
    array = Array("A", tuple(shape), element_size, base)
    last = tuple(s - 1 for s in shape)
    assert array.address(last) == base + (array.n_elements - 1) * element_size
    assert array.address((0,) * len(shape)) == base


@given(
    offset_a=st.integers(0, 10),
    offset_b=st.integers(0, 10),
)
def test_uniform_generation_symmetric(offset_a, offset_b):
    array = Array("A", (64,))
    ref_a = ArrayReference(array, (AffineExpr.of(offset_a, i=1),))
    ref_b = ArrayReference(array, (AffineExpr.of(offset_b, i=1),))
    assert ref_a.is_uniformly_generated_with(ref_b)
    assert ref_b.is_uniformly_generated_with(ref_a)
    dist_ab = ref_a.constant_distance_to(ref_b)
    dist_ba = ref_b.constant_distance_to(ref_a)
    assert dist_ab == tuple(-d for d in dist_ba)


# ---------------------------------------------------------------------------
# Functional cache model
# ---------------------------------------------------------------------------
@given(
    addresses=st.lists(st.integers(0, 8192), min_size=1, max_size=200),
)
def test_functional_cache_repeat_access_hits(addresses):
    cache = _FunctionalCache(CacheConfig(size=1024, line_size=32))
    for address in addresses:
        cache.access(address)
        assert cache.access(address)  # immediate re-access always hits


@given(
    addresses=st.lists(st.integers(0, 4096), min_size=1, max_size=100),
    assoc=st.sampled_from([1, 2, 4]),
)
def test_higher_associativity_never_more_misses(addresses, assoc):
    direct = _FunctionalCache(CacheConfig(size=1024, line_size=32))
    assoc_cache = _FunctionalCache(
        CacheConfig(size=1024, line_size=32, associativity=assoc)
    )
    direct_misses = sum(not direct.access(a) for a in addresses)
    assoc_misses = sum(not assoc_cache.access(a) for a in addresses)
    # LRU with more ways on the same capacity cannot miss more on these
    # streams (set-partitioning inclusion holds for fixed capacity + LRU).
    assert assoc_misses <= direct_misses + len(addresses) // 10 + 1


# ---------------------------------------------------------------------------
# MSI coherence
# ---------------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 3),                  # requesting cluster
            st.sampled_from([0, 64, 1024]),     # line address
            st.booleans(),                      # is_store
        ),
        min_size=1,
        max_size=60,
    ),
)
def test_msi_invariants_hold_under_random_traffic(ops):
    caches = [
        ClusterCache(CacheConfig(size=1024, line_size=32), cluster_id=k)
        for k in range(4)
    ]
    msi = MSIController(caches)
    for cluster, address, is_store in ops:
        op = BusOp.BUS_RDX if is_store else BusOp.BUS_RD
        msi.snoop(cluster, address, op)
        caches[cluster].fill(
            address, LineState.MODIFIED if is_store else LineState.SHARED
        )
        for line in (0, 64, 1024):
            msi.check_invariants(line)


# ---------------------------------------------------------------------------
# Scheduler invariants over random kernels
# ---------------------------------------------------------------------------
_GEN_CONFIG = GeneratorConfig(max_extent=24, min_extent=6, max_loads=4, max_arith=5)


@_SLOW
@given(seed=st.integers(0, 10_000))
def test_random_kernels_schedule_validates(seed):
    kernel = random_kernel(seed, _GEN_CONFIG)
    machine = two_cluster()
    schedule = BaselineScheduler().schedule(kernel, machine)
    schedule.validate()  # dependences, FU capacity, bus capacity
    assert schedule.ii >= compute_mii(kernel.ddg, machine)[0]


@_SLOW
@given(seed=st.integers(0, 10_000))
def test_random_kernels_pressure_within_register_files(seed):
    kernel = random_kernel(seed, _GEN_CONFIG)
    machine = two_cluster()
    schedule = BaselineScheduler().schedule(kernel, machine)
    for cluster, pressure in cluster_pressures(schedule).items():
        assert pressure <= machine.cluster(cluster).n_registers


@_SLOW
@given(seed=st.integers(0, 10_000))
def test_simulation_total_is_compute_plus_stall(seed):
    kernel = random_kernel(seed, _GEN_CONFIG)
    schedule = BaselineScheduler().schedule(kernel, unified())
    result = simulate(schedule, n_iterations=min(8, kernel.loop.n_iterations))
    assert result.total_cycles == result.compute_cycles + result.stall_cycles
    assert result.stall_cycles >= 0


@_SLOW
@given(seed=st.integers(0, 10_000))
def test_unified_machine_never_communicates(seed):
    kernel = random_kernel(seed, _GEN_CONFIG)
    schedule = BaselineScheduler().schedule(kernel, unified())
    assert schedule.communications == []


# ---------------------------------------------------------------------------
# ISA encoding, expansion, MVE and unrolling over random kernels
# ---------------------------------------------------------------------------
@_SLOW
@given(seed=st.integers(0, 10_000))
def test_random_kernels_encode_to_the_isa(seed):
    from repro.isa import encode_kernel

    kernel = random_kernel(seed, _GEN_CONFIG)
    schedule = BaselineScheduler().schedule(kernel, two_cluster())
    program = encode_kernel(schedule)
    program.validate()
    encoded = {
        f.op
        for i in program.instructions
        for c in i.clusters
        for f in c.fu_fields
        if f.op is not None
    }
    assert encoded == set(schedule.placements)


@_SLOW
@given(seed=st.integers(0, 10_000), niter=st.integers(8, 24))
def test_random_kernels_expand_consistently(seed, niter):
    from repro.scheduler import expand

    kernel = random_kernel(seed, _GEN_CONFIG)
    schedule = BaselineScheduler().schedule(kernel, unified())
    if niter < schedule.stage_count:
        niter = schedule.stage_count
    expanded = expand(schedule, niter)
    # The paper's (NITER + SC - 1) * II is exact when the last operation
    # occupies the final slot of its stage, otherwise an upper bound by
    # less than one II.
    bound = (niter + schedule.stage_count - 1) * schedule.ii
    assert bound - schedule.ii < expanded.total_cycles <= bound
    assert len(expanded.prolog) + len(expanded.kernel) + len(
        expanded.epilog
    ) == niter * len(schedule.placements)


@_SLOW
@given(seed=st.integers(0, 10_000))
def test_random_kernels_allocate_registers(seed):
    from repro.scheduler.mve import allocate_registers

    kernel = random_kernel(seed, _GEN_CONFIG)
    schedule = BaselineScheduler().schedule(kernel, two_cluster())
    assignment = allocate_registers(schedule)
    assert assignment.unroll_factor >= 1
    for cluster, used in assignment.used_per_cluster.items():
        assert used <= schedule.machine.cluster(cluster).n_registers


@_SLOW
@given(seed=st.integers(0, 10_000), factor=st.sampled_from([2, 3, 4]))
def test_unroll_preserves_touched_addresses(seed, factor):
    from repro.transform import UnrollError, unroll

    kernel = random_kernel(seed, _GEN_CONFIG)
    try:
        unrolled = unroll(kernel, factor)
    except UnrollError:
        return  # trip count not divisible: nothing to check

    def touched(k):
        out = set()
        for point in k.loop.iteration_points():
            for ref in k.loop.refs:
                out.add((ref.array.name, ref.address(point), ref.is_store))
        return out

    assert touched(kernel) == touched(unrolled)


@_SLOW
@given(seed=st.integers(0, 10_000))
def test_equations_match_simulation_on_random_kernels(seed):
    from repro.cme import EquationCME, SamplingCME
    from repro.machine.config import CacheConfig

    kernel = random_kernel(seed, _GEN_CONFIG)
    cache = CacheConfig(size=1024, line_size=32)
    equations = EquationCME(max_points=128)
    simulation = SamplingCME(max_points=128)
    ops = kernel.loop.memory_operations
    for op in ops:
        assert equations.miss_ratio(
            kernel.loop, op, ops, cache
        ) == simulation.miss_ratio(kernel.loop, op, ops, cache)


@_SLOW
@given(seed=st.integers(0, 10_000))
def test_trace_stall_matches_simulation(seed):
    from repro.simulator import simulate
    from repro.simulator.trace import trace_schedule

    kernel = random_kernel(seed, _GEN_CONFIG)
    schedule = BaselineScheduler().schedule(kernel, two_cluster())
    niter = min(8, kernel.loop.n_iterations)
    trace = trace_schedule(schedule, n_iterations=niter, n_times=1)
    plain = simulate(schedule, n_iterations=niter, n_times=1)
    assert trace.total_stall == plain.stall_cycles
