#!/usr/bin/env python
"""Loop unrolling × binding prefetching — the paper's deferred optimization.

Section 4.3 notes that a load with spatial locality is prefetched (or
not) as a whole even though only its line-boundary instances miss, and
that unrolling can split it into an always-missing copy and always-
hitting copies.  This example unrolls a streaming kernel, shows the
per-copy miss ratios the locality analysis reports, and compares the
resulting schedules.

Usage::

    python examples/unrolling_study.py
"""

from repro import (
    BusConfig,
    LoopBuilder,
    SamplingCME,
    make_scheduler,
    simulate,
    two_cluster,
    unroll,
)
from repro.scheduler.lifetimes import max_live

N = 128


def build_kernel():
    b = LoopBuilder("stream")
    i = b.dim("i", 0, N)
    x = b.array("X", (N,))
    y = b.array("Y", (N,))
    out = b.array("OUT", (N,))
    xi = b.load(x, [b.aff(i=1)], name="ld_x")
    yi = b.load(y, [b.aff(i=1)], name="ld_y")
    t = b.fmul(xi, yi, name="mul")
    b.store(out, [b.aff(i=1)], t, name="st")
    return b.build()


def main():
    kernel = build_kernel()
    machine = two_cluster(memory_bus=BusConfig(count=None, latency=1))
    locality = SamplingCME(max_points=1024)
    cache = machine.cluster(0).cache

    unrolled = unroll(kernel, 4)
    print(f"original: {kernel.loop}")
    print(f"unrolled: {unrolled.loop}")
    print()

    print("per-copy miss ratios (all copies sharing one cache):")
    ops = unrolled.loop.memory_operations
    for op in ops:
        if op.is_load:
            ratio = locality.miss_ratio(unrolled.loop, op, ops, cache)
            print(f"  {op.name:10s} {ratio:.2f}")
    print("-> the leading copy carries the line-boundary miss;")
    print("   the followers ride its line ('one misses, the rest hit').")
    print()

    print(f"{'variant':28s} {'II':>3s} {'prefetched':>10s} "
          f"{'MaxLive':>7s} {'stall':>6s} {'cycles/elem':>11s}")
    for label, variant, threshold in (
        ("rolled, no prefetch", kernel, 1.0),
        ("rolled, prefetch all", kernel, 0.0),
        ("unrolled x4, no prefetch", unrolled, 1.0),
        ("unrolled x4, selective", unrolled, 0.5),
    ):
        engine = make_scheduler("rmca", threshold, locality)
        schedule = engine.schedule(variant, machine)
        result = simulate(schedule)
        print(
            f"{label:28s} {schedule.ii:3d} "
            f"{len(schedule.prefetched_loads()):10d} "
            f"{max_live(schedule):7d} {result.stall_cycles:6d} "
            f"{result.total_cycles / N:11.3f}"
        )
    print()
    print(
        "Selective prefetching after unrolling cuts register pressure"
        " roughly in half relative to prefetching the rolled load, at the"
        " cost of residual stall: the followers' data actually arrives"
        " with the leader's in-flight fill, an effect the tag-level"
        " hit/miss model does not show."
    )


if __name__ == "__main__":
    main()
