"""Reproduction of *Modulo Scheduling for a Fully-Distributed Clustered
VLIW Architecture* (Jesús Sánchez and Antonio González, MICRO-33, 2000).

The package implements the complete system the paper describes:

* :mod:`repro.ir` — loop IR: operations, affine references, dependence
  graphs, and a builder DSL for writing kernels,
* :mod:`repro.machine` — the multiVLIWprocessor machine model and the
  paper's Table 1 configurations,
* :mod:`repro.cme` — the Cache Miss Equations locality analysis (sampled
  and analytic backends),
* :mod:`repro.scheduler` — modulo scheduling: MII, SMS ordering, the
  register-communication Baseline and the proposed RMCA scheduler with
  binding prefetching,
* :mod:`repro.memory` — the distributed memory substrate: per-cluster
  non-blocking caches, MSHRs, snoopy MSI coherence, shared memory buses,
* :mod:`repro.simulator` — lockstep execution with the paper's
  NCYCLE_compute / NCYCLE_stall accounting,
* :mod:`repro.workloads` — SPECfp95-style kernels, the Section 3
  motivating example, a random kernel generator,
* :mod:`repro.analysis` — the closed-form cycle model and schedule
  metrics,
* :mod:`repro.engine` — the staged cell pipeline
  (:class:`~repro.engine.stages.CellRequest` /
  :func:`~repro.engine.pipeline.execute_cell`) and the plan-based
  execution layer that dedups and batches stage work across cells,
* :mod:`repro.harness` — the Figure 5 / Figure 6 experiment sweeps and
  the :class:`~repro.harness.grid.ExperimentGrid` cell engine.

Note: the re-exported :func:`run_cell` is the historical single-cell
shim, kept for backcompat only — new call sites should build a
:class:`~repro.engine.stages.CellRequest` (or a
:class:`~repro.harness.grid.CellSpec` run through the grid) instead.

Quickstart::

    from repro import (
        LoopBuilder, two_cluster, RMCAScheduler, SchedulerConfig,
        default_analyzer, simulate,
    )

    b = LoopBuilder("saxpy")
    i = b.dim("i", 0, 1024)
    x, y = b.array("X", (1024,)), b.array("Y", (1024,))
    s = b.fmul(b.load(x, [b.aff(i=1)]), b.fconst("alpha"))
    t = b.fadd(s, b.load(y, [b.aff(i=1)]))
    b.store(y, [b.aff(i=1)], t)
    kernel = b.build()

    scheduler = RMCAScheduler(default_analyzer(), SchedulerConfig(threshold=0.25))
    schedule = scheduler.schedule(kernel, two_cluster())
    print(simulate(schedule).total_cycles)
"""

from .analysis import (
    CyclePrediction,
    RunResult,
    ScheduleMetrics,
    make_scheduler,
    ncycle_compute,
    predict_cycles,
    run_cell,
    schedule_metrics,
)
from .cme import AnalyticCME, EquationCME, SamplingCME, default_analyzer
from .harness import FigureData, figure5, figure6
from .isa import KernelProgram, encode_kernel
from .ir import (
    AffineExpr,
    Array,
    ArrayReference,
    Kernel,
    Loop,
    LoopBuilder,
    OpClass,
    Operation,
)
from .machine import (
    BusConfig,
    CacheConfig,
    ClusterConfig,
    MachineConfig,
    four_cluster,
    preset,
    two_cluster,
    unified,
)
from .scheduler import (
    BaselineScheduler,
    ExpandedLoop,
    RMCAScheduler,
    Schedule,
    SchedulerConfig,
    SchedulingError,
    expand,
)
from .simulator import (
    LockstepSimulator,
    SimulationResult,
    VectorizedSimulator,
    simulate,
)
from .transform import unroll
from .workloads import (
    SPEC_KERNELS,
    motivating_kernel,
    motivating_machine,
    random_kernel,
    spec_suite,
)

__version__ = "1.0.0"

__all__ = [
    "AffineExpr",
    "AnalyticCME",
    "Array",
    "ArrayReference",
    "BaselineScheduler",
    "BusConfig",
    "CacheConfig",
    "ClusterConfig",
    "CyclePrediction",
    "EquationCME",
    "ExpandedLoop",
    "FigureData",
    "Kernel",
    "KernelProgram",
    "LockstepSimulator",
    "VectorizedSimulator",
    "Loop",
    "LoopBuilder",
    "MachineConfig",
    "OpClass",
    "Operation",
    "RMCAScheduler",
    "RunResult",
    "SPEC_KERNELS",
    "SamplingCME",
    "Schedule",
    "ScheduleMetrics",
    "SchedulerConfig",
    "SchedulingError",
    "SimulationResult",
    "default_analyzer",
    "encode_kernel",
    "expand",
    "figure5",
    "figure6",
    "four_cluster",
    "make_scheduler",
    "motivating_kernel",
    "motivating_machine",
    "ncycle_compute",
    "predict_cycles",
    "preset",
    "random_kernel",
    "run_cell",
    "schedule_metrics",
    "simulate",
    "spec_suite",
    "two_cluster",
    "unified",
    "unroll",
]
