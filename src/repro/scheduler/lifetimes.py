"""Register lifetime and pressure analysis for modulo schedules.

A modulo-scheduled value defined at time ``d`` and last used at time ``u``
is live for ``u - d`` cycles; because a new instance is created every II
cycles, the value occupies ``ceil`` overlapping registers.  MaxLive per
cluster is computed by summing, for every modulo slot, the number of
concurrently live instances, and the schedule is feasible only when every
cluster's MaxLive fits its register file (the paper restarts with II+1
otherwise).

Cross-cluster values additionally occupy a register in the *destination*
cluster from the bus arrival until their last local use (the IRV latch is
written into the local register file per the ISA of Section 2.1).

The pressure check runs once per II attempt of the scheduler's retry
loop, but the dependence structure it walks — which operations define a
value, which flow edges consume it, at what distance — is a property of
the *kernel*, not of any particular schedule.  :class:`LifetimeModel`
captures that structure once so the retry loop only re-evaluates the
placement-dependent arithmetic; the module-level functions remain as
one-shot conveniences that build a throwaway model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.builder import Kernel
from ..machine.config import MachineConfig
from .result import Communication, Placement, Schedule

__all__ = [
    "ValueLifetime",
    "LifetimeModel",
    "cluster_pressures",
    "max_live",
    "pressure_ok",
]


@dataclass(frozen=True)
class ValueLifetime:
    """Live range of one value inside one cluster."""

    producer: str
    cluster: int
    start: int  # value becomes available
    end: int  # last read (exclusive end of the live range)

    @property
    def length(self) -> int:
        return max(0, self.end - self.start)


class LifetimeModel:
    """Schedule-independent dependence structure behind the pressure check.

    Built once per kernel (the scheduler hoists it out of its II retry
    loop); :meth:`lifetimes` / :meth:`cluster_pressures` /
    :meth:`pressure_ok` then evaluate any schedule of that kernel without
    re-walking the DDG.
    """

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        loop = kernel.loop
        ddg = kernel.ddg
        #: name -> (is_load, [(consumer name, distance), ...]) for every
        #: operation that defines a value.
        self.producers: Dict[str, Tuple[bool, List[Tuple[str, int]]]] = {}
        for op in loop.operations:
            if op.dest is None:
                continue
            consumers = [
                (edge.dst, edge.distance)
                for edge in ddg.out_edges(op.name)
                if edge.kind == "flow"
            ]
            self.producers[op.name] = (op.is_load, consumers)

    # ------------------------------------------------------------------
    def lifetimes(self, schedule: Schedule) -> List[ValueLifetime]:
        """Live ranges implied by the placements and communications."""
        ii = schedule.ii
        placements = schedule.placements
        ranges: List[ValueLifetime] = []

        comms_by_key: Dict[Tuple[str, int], List[Communication]] = {}
        for comm in schedule.communications:
            comms_by_key.setdefault(
                (comm.producer, comm.dst_cluster), []
            ).append(comm)

        for name, (is_load, consumers) in self.producers.items():
            placement = placements[name]
            ready = placement.time + placement.assumed_latency
            # A load's destination register is reserved from issue: the MSHR
            # of the lockup-free cache holds it while the fill is outstanding.
            # This is why binding prefetching (Section 4.3) raises register
            # pressure — the lifetime grows by the full miss latency.
            start = placement.time if is_load else ready
            # Last use in the producer cluster: local consumers plus the
            # departure time of any outgoing communication.
            local_last = ready
            remote_last: Dict[int, int] = {}
            for dst_name, distance in consumers:
                consumer = placements[dst_name]
                use_time = consumer.time + ii * distance
                if consumer.cluster == placement.cluster:
                    if use_time > local_last:
                        local_last = use_time
                else:
                    prior = remote_last.get(consumer.cluster, 0)
                    if use_time > prior:
                        remote_last[consumer.cluster] = use_time
            for dst_cluster, last_use in remote_last.items():
                comms = comms_by_key.get((name, dst_cluster), [])
                if comms:
                    departure = max(c.start for c in comms)
                    local_last = max(local_last, departure)
                    arrival = min(c.arrival for c in comms)
                    ranges.append(
                        ValueLifetime(name, dst_cluster, arrival, last_use)
                    )
            ranges.append(
                ValueLifetime(name, placement.cluster, start, local_last)
            )
        return ranges

    def cluster_pressures(self, schedule: Schedule) -> Dict[int, int]:
        """MaxLive per cluster for a schedule."""
        ii = schedule.ii
        per_slot: Dict[int, List[int]] = {
            c: [0] * ii for c in range(schedule.machine.n_clusters)
        }
        for lifetime in self.lifetimes(schedule):
            slots = per_slot[lifetime.cluster]
            length = lifetime.end - lifetime.start
            if length <= 0:
                # A value produced and never consumed still needs a register
                # in its definition cycle.
                slots[lifetime.start % ii] += 1
                continue
            # A range spanning w whole IIs covers every slot w times; only
            # the sub-II remainder needs walking (binding-prefetched loads
            # are live for the full miss latency, many IIs long).
            whole, remainder = divmod(length, ii)
            if whole:
                for slot in range(ii):
                    slots[slot] += whole
            for t in range(lifetime.start, lifetime.start + remainder):
                slots[t % ii] += 1
        return {c: max(slots) if slots else 0 for c, slots in per_slot.items()}

    def max_live(self, schedule: Schedule) -> int:
        """Largest per-cluster MaxLive."""
        pressures = self.cluster_pressures(schedule)
        return max(pressures.values(), default=0)

    def pressure_ok(self, schedule: Schedule) -> bool:
        """True when every cluster's MaxLive fits its register file."""
        pressures = self.cluster_pressures(schedule)
        for cluster_id, pressure in pressures.items():
            if pressure > schedule.machine.cluster(cluster_id).n_registers:
                return False
        return True


# ----------------------------------------------------------------------
# One-shot conveniences
# ----------------------------------------------------------------------
def _lifetimes(schedule: Schedule) -> List[ValueLifetime]:
    return LifetimeModel(schedule.kernel).lifetimes(schedule)


def cluster_pressures(
    schedule: Schedule, model: Optional[LifetimeModel] = None
) -> Dict[int, int]:
    """MaxLive per cluster for a schedule."""
    model = model if model is not None else LifetimeModel(schedule.kernel)
    return model.cluster_pressures(schedule)


def max_live(
    schedule: Schedule, model: Optional[LifetimeModel] = None
) -> int:
    """Largest per-cluster MaxLive."""
    model = model if model is not None else LifetimeModel(schedule.kernel)
    return model.max_live(schedule)


def pressure_ok(
    schedule: Schedule, model: Optional[LifetimeModel] = None
) -> bool:
    """True when every cluster's MaxLive fits its register file."""
    model = model if model is not None else LifetimeModel(schedule.kernel)
    return model.pressure_ok(schedule)
