"""Unit tests for repro.ir.ddg."""

import pytest

from repro.ir.ddg import DepEdge, DependenceGraph, build_ddg
from repro.ir.loop import Loop, LoopDim
from repro.ir.operations import OpClass, Operation
from repro.ir.references import AffineExpr, Array, ArrayReference


def _chain_loop():
    """ld -> mul -> add -> st with registers."""
    a = Array("A", (64,))
    refs = (
        ArrayReference(a, (AffineExpr.of(0, i=1),)),
        ArrayReference(a, (AffineExpr.of(0, i=1),), is_store=True),
    )
    ops = (
        Operation("ld", OpClass.LOAD, dest="v", ref_index=0),
        Operation("mul", OpClass.FMUL, dest="w", srcs=("v", "v")),
        Operation("add", OpClass.FADD, dest="x", srcs=("w", "v")),
        Operation("st", OpClass.STORE, srcs=("x",), ref_index=1),
    )
    return Loop("chain", (LoopDim("i", 0, 16),), ops, refs)


class TestDepEdge:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown dependence kind"):
            DepEdge("a", "b", "bogus")

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            DepEdge("a", "b", "flow", distance=-1)

    def test_valid_kinds(self):
        for kind in ("flow", "anti", "output", "mem"):
            assert DepEdge("a", "b", kind).kind == kind


class TestDependenceGraph:
    def test_edge_endpoints_must_exist(self):
        graph = DependenceGraph(_chain_loop())
        with pytest.raises(KeyError):
            graph.add_edge(DepEdge("ld", "nope", "flow"))

    def test_nodes_in_program_order(self):
        graph = DependenceGraph(_chain_loop())
        assert graph.nodes() == ["ld", "mul", "add", "st"]

    def test_multigraph_keeps_parallel_edges(self):
        graph = DependenceGraph(_chain_loop())
        graph.add_edge(DepEdge("ld", "mul", "flow", 0))
        graph.add_edge(DepEdge("ld", "mul", "anti", 1))
        assert graph.n_edges == 2

    def test_in_out_edges(self):
        graph = build_ddg(_chain_loop())
        assert {e.src for e in graph.in_edges("add")} == {"mul", "ld"}
        assert {e.dst for e in graph.out_edges("ld")} == {"mul", "add"}

    def test_register_edges_are_flow_only(self):
        graph = build_ddg(_chain_loop(), [DepEdge("st", "ld", "mem", 1)])
        kinds = {e.kind for e in graph.register_edges()}
        assert kinds == {"flow"}

    def test_crossing_register_edges(self):
        graph = build_ddg(_chain_loop())
        crossing = graph.crossing_register_edges(
            {"ld": 0, "mul": 1, "add": 0, "st": 0}
        )
        pairs = {(e.src, e.dst) for e in crossing}
        assert pairs == {("ld", "mul"), ("mul", "add")}

    def test_crossing_ignores_unassigned(self):
        graph = build_ddg(_chain_loop())
        assert graph.crossing_register_edges({"ld": 0}) == []

    def test_no_recurrence_in_dag(self):
        graph = build_ddg(_chain_loop())
        assert not graph.has_recurrences()
        assert graph.nodes_on_recurrences() == set()

    def test_recurrence_detection(self):
        graph = build_ddg(
            _chain_loop(), [DepEdge("add", "mul", "flow", 1)]
        )
        assert graph.has_recurrences()
        assert graph.nodes_on_recurrences() == {"mul", "add"}

    def test_self_loop_recurrence(self):
        graph = build_ddg(_chain_loop(), [DepEdge("add", "add", "flow", 1)])
        assert "add" in graph.nodes_on_recurrences()


class TestBuildDdg:
    def test_flow_edges_from_def_use(self):
        graph = build_ddg(_chain_loop())
        flows = {(e.src, e.dst) for e in graph.register_edges()}
        assert ("ld", "mul") in flows
        assert ("mul", "add") in flows
        assert ("ld", "add") in flows
        assert ("add", "st") in flows

    def test_output_dependence_on_redefinition(self):
        a = Array("A", (8,))
        ref = ArrayReference(a, (AffineExpr.of(0, i=1),))
        ops = (
            Operation("ld1", OpClass.LOAD, dest="v", ref_index=0),
            Operation("ld2", OpClass.LOAD, dest="v", ref_index=0),
        )
        loop = Loop("redef", (LoopDim("i", 0, 4),), ops, (ref,))
        graph = build_ddg(loop)
        kinds = {(e.src, e.dst, e.kind) for e in graph.edges()}
        assert ("ld1", "ld2", "output") in kinds

    def test_extra_edges_appended(self):
        graph = build_ddg(_chain_loop(), [DepEdge("st", "ld", "mem", 1)])
        assert any(e.kind == "mem" for e in graph.edges())
