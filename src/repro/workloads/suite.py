"""The benchmark suite registry.

``SPEC_KERNELS`` maps the paper's eight SPECfp95 program names to the
factory producing our synthetic stand-in kernel; :func:`spec_suite`
instantiates all of them.  The registry is ordered as the paper lists the
programs (Section 5.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from ..ir.builder import Kernel
from . import kernels as _k

__all__ = ["SPEC_KERNELS", "spec_suite", "kernel_by_name", "suite_stats"]

SPEC_KERNELS: Mapping[str, Callable[[], Kernel]] = {
    "tomcatv": _k.tomcatv,
    "swim": _k.swim,
    "su2cor": _k.su2cor,
    "hydro2d": _k.hydro2d,
    "mgrid": _k.mgrid,
    "applu": _k.applu,
    "turb3d": _k.turb3d,
    "apsi": _k.apsi,
}


def spec_suite(names: Optional[List[str]] = None) -> List[Kernel]:
    """Instantiate the suite (or the named subset, in registry order)."""
    selected = list(SPEC_KERNELS) if names is None else names
    unknown = [n for n in selected if n not in SPEC_KERNELS]
    if unknown:
        raise KeyError(f"unknown kernels {unknown}; known: {list(SPEC_KERNELS)}")
    return [SPEC_KERNELS[name]() for name in selected]


def kernel_by_name(name: str) -> Kernel:
    """Instantiate one suite kernel by its SPECfp95 name."""
    try:
        factory = SPEC_KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; known: {list(SPEC_KERNELS)}"
        ) from None
    return factory()


def suite_stats() -> Dict[str, Dict[str, int]]:
    """Per-kernel size statistics (the Section 5.1 workload table)."""
    return {kernel.name: kernel.loop.stats() for kernel in spec_suite()}
