"""Unit tests for the Table 1 machine presets."""

import pytest

from repro.ir.operations import FUType
from repro.machine import (
    ALL_PRESETS,
    TOTAL_CACHE_BYTES,
    TOTAL_REGISTERS,
    BusConfig,
    four_cluster,
    preset,
    two_cluster,
    unified,
)


class TestTable1Invariants:
    """The properties Table 1 fixes across all three configurations."""

    @pytest.mark.parametrize("factory", [unified, two_cluster, four_cluster])
    def test_twelve_way_issue(self, factory):
        assert factory().issue_width == 12

    @pytest.mark.parametrize("factory", [unified, two_cluster, four_cluster])
    def test_total_registers(self, factory):
        assert factory().total_registers == TOTAL_REGISTERS

    @pytest.mark.parametrize("factory", [unified, two_cluster, four_cluster])
    def test_total_cache(self, factory):
        assert factory().total_cache_size == TOTAL_CACHE_BYTES

    @pytest.mark.parametrize("factory", [unified, two_cluster, four_cluster])
    def test_caches_direct_mapped_non_blocking(self, factory):
        for cluster in factory().clusters:
            assert cluster.cache.associativity == 1
            assert cluster.cache.mshr_entries == 10
            assert cluster.cache.hit_latency == 2

    @pytest.mark.parametrize("factory", [unified, two_cluster, four_cluster])
    def test_main_memory_ten_cycles(self, factory):
        assert factory().main_memory_latency == 10

    @pytest.mark.parametrize("factory", [unified, two_cluster, four_cluster])
    def test_homogeneous_clusters(self, factory):
        machine = factory()
        first = machine.clusters[0]
        for cluster in machine.clusters:
            assert cluster == first


class TestPerConfiguration:
    def test_unified_shape(self):
        machine = unified()
        assert machine.n_clusters == 1
        cluster = machine.clusters[0]
        assert cluster.n_integer == cluster.n_fp == cluster.n_memory == 4
        assert cluster.n_registers == 64
        assert cluster.cache.size == 8 * 1024

    def test_two_cluster_shape(self):
        machine = two_cluster()
        assert machine.n_clusters == 2
        cluster = machine.clusters[0]
        assert cluster.n_integer == cluster.n_fp == cluster.n_memory == 2
        assert cluster.n_registers == 32
        assert cluster.cache.size == 4 * 1024

    def test_four_cluster_shape(self):
        machine = four_cluster()
        assert machine.n_clusters == 4
        cluster = machine.clusters[0]
        assert cluster.n_integer == cluster.n_fp == cluster.n_memory == 1
        assert cluster.n_registers == 16
        assert cluster.cache.size == 2 * 1024

    def test_default_buses_realistic(self):
        machine = two_cluster()
        assert machine.register_bus == BusConfig(count=2, latency=1)
        assert machine.memory_bus == BusConfig(count=1, latency=1)

    def test_bus_override(self):
        machine = four_cluster(register_bus=BusConfig(count=None, latency=4))
        assert machine.register_bus.unbounded
        assert machine.register_bus.latency == 4


class TestPresetLookup:
    def test_known_names(self):
        for name in ("unified", "2-cluster", "4-cluster"):
            assert preset(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown preset"):
            preset("16-cluster")

    def test_all_presets_registry(self):
        assert set(ALL_PRESETS) == {
            "unified", "2-cluster", "4-cluster", "heterogeneous",
        }


class TestHeterogeneous:
    def test_shares_table1_totals(self):
        from repro.machine import heterogeneous

        machine = heterogeneous()
        assert machine.issue_width == 12
        assert machine.total_registers == 64
        assert machine.total_cache_size == 8 * 1024

    def test_asymmetric_clusters(self):
        from repro.machine import heterogeneous

        machine = heterogeneous()
        big, small = machine.clusters
        assert big.issue_width == 9
        assert small.issue_width == 3
        assert big.cache.size == 3 * small.cache.size

    def test_schedulable(self):
        from repro.machine import heterogeneous
        from repro.scheduler import BaselineScheduler
        from repro.workloads import kernel_by_name

        kernel = kernel_by_name("hydro2d")
        schedule = BaselineScheduler().schedule(kernel, heterogeneous())
        schedule.validate()

    def test_big_cluster_takes_more_work(self):
        from repro.machine import heterogeneous
        from repro.scheduler import BaselineScheduler
        from repro.workloads import kernel_by_name

        kernel = kernel_by_name("tomcatv")
        schedule = BaselineScheduler().schedule(kernel, heterogeneous())
        counts = [len(schedule.ops_in_cluster(c)) for c in range(2)]
        assert counts[0] > counts[1]
