"""Affine array references.

The Cache Miss Equations framework (Section 4.2 of the paper) applies to
*affine* references: array subscripts that are linear functions of the loop
induction variables.  This module provides:

* :class:`Array` — a named array with a base address and element size,
* :class:`AffineExpr` — a linear expression ``c0 + sum(ci * iv_i)`` over the
  induction variables of a loop nest,
* :class:`ArrayReference` — an array plus one affine subscript expression per
  dimension, able to produce the byte address touched at any iteration point.

Addresses are plain Python integers (byte addresses in a flat address
space), which is what both the CME estimators and the cache simulator
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence, Tuple

__all__ = ["Array", "AffineExpr", "ArrayReference"]


@dataclass(frozen=True)
class Array:
    """A named array laid out contiguously in memory (row-major).

    Parameters
    ----------
    name:
        Array identifier (``"A"``, ``"B"``...).
    shape:
        Extent of each dimension, row-major; ``(n,)`` for 1-D arrays.
    element_size:
        Bytes per element (8 for double-precision, the paper's domain).
    base:
        Byte address of element 0.
    """

    name: str
    shape: Tuple[int, ...]
    element_size: int = 8
    base: int = 0

    def __post_init__(self) -> None:
        if not self.shape or any(s <= 0 for s in self.shape):
            raise ValueError(f"array {self.name!r} needs positive extents")
        if self.element_size <= 0:
            raise ValueError("element_size must be positive")
        if self.base < 0:
            raise ValueError("base address must be non-negative")

    @property
    def n_elements(self) -> int:
        """Total number of elements."""
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def size_bytes(self) -> int:
        """Total footprint in bytes."""
        return self.n_elements * self.element_size

    def linear_index(self, indices: Sequence[int]) -> int:
        """Row-major linearization of a multi-dimensional element index."""
        if len(indices) != len(self.shape):
            raise ValueError(
                f"array {self.name!r} has {len(self.shape)} dims, "
                f"got {len(indices)} subscripts"
            )
        linear = 0
        for extent, idx in zip(self.shape, indices):
            linear = linear * extent + idx
        return linear

    def address(self, indices: Sequence[int]) -> int:
        """Byte address of the element at ``indices``."""
        return self.base + self.linear_index(indices) * self.element_size


@dataclass(frozen=True)
class AffineExpr:
    """Linear expression ``constant + sum(coeffs[v] * v)`` over loop vars.

    ``coeffs`` maps induction-variable names to integer coefficients.
    Instances are immutable and hashable so references can be deduplicated
    and used as dictionary keys by the reuse analysis.
    """

    constant: int = 0
    coeffs: Tuple[Tuple[str, int], ...] = field(default=())

    @staticmethod
    def of(constant: int = 0, **coeffs: int) -> "AffineExpr":
        """Convenience constructor: ``AffineExpr.of(3, i=1, j=-2)``."""
        items = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return AffineExpr(constant=constant, coeffs=items)

    def coeff(self, var: str) -> int:
        """Coefficient of ``var`` (0 if absent)."""
        for name, value in self.coeffs:
            if name == var:
                return value
        return 0

    @property
    def variables(self) -> Tuple[str, ...]:
        """Names of variables with non-zero coefficients."""
        return tuple(name for name, _ in self.coeffs)

    def evaluate(self, point: Mapping[str, int]) -> int:
        """Value of the expression at an iteration point."""
        total = self.constant
        for name, coef in self.coeffs:
            total += coef * point[name]
        return total

    def shifted(self, delta: int) -> "AffineExpr":
        """Same expression with the constant term shifted by ``delta``."""
        return AffineExpr(constant=self.constant + delta, coeffs=self.coeffs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [str(self.constant)] if self.constant or not self.coeffs else []
        for name, coef in self.coeffs:
            parts.append(f"{coef}*{name}" if coef != 1 else name)
        return " + ".join(parts) if parts else "0"


@dataclass(frozen=True)
class ArrayReference:
    """An affine access to an array: one :class:`AffineExpr` per dimension.

    ``is_store`` distinguishes read from write accesses (MSI coherence and
    the group-reuse analysis both care).
    """

    array: Array
    subscripts: Tuple[AffineExpr, ...]
    is_store: bool = False

    def __post_init__(self) -> None:
        if len(self.subscripts) != len(self.array.shape):
            raise ValueError(
                f"reference to {self.array.name!r} needs "
                f"{len(self.array.shape)} subscripts, got {len(self.subscripts)}"
            )

    @property
    def variables(self) -> Tuple[str, ...]:
        """All induction variables appearing in any subscript."""
        seen: Dict[str, None] = {}
        for expr in self.subscripts:
            for var in expr.variables:
                seen.setdefault(var, None)
        return tuple(seen)

    def element(self, point: Mapping[str, int]) -> Tuple[int, ...]:
        """Element index touched at an iteration point."""
        return tuple(expr.evaluate(point) for expr in self.subscripts)

    def address(self, point: Mapping[str, int]) -> int:
        """Byte address touched at an iteration point."""
        return self.array.address(self.element(point))

    def is_uniformly_generated_with(self, other: "ArrayReference") -> bool:
        """True when both references differ only by constant terms.

        Uniformly generated references (same array, identical coefficient
        structure) are the candidates for *group reuse* — the property the
        RMCA scheduler exploits when co-locating LD1/LD3 in the motivating
        example.
        """
        if self.array.name != other.array.name:
            return False
        if len(self.subscripts) != len(other.subscripts):
            return False
        return all(
            a.coeffs == b.coeffs
            for a, b in zip(self.subscripts, other.subscripts)
        )

    def constant_distance_to(
        self, other: "ArrayReference"
    ) -> Tuple[int, ...]:
        """Per-dimension constant offset between uniformly generated refs.

        Raises ``ValueError`` when the references are not uniformly
        generated.
        """
        if not self.is_uniformly_generated_with(other):
            raise ValueError("references are not uniformly generated")
        return tuple(
            b.constant - a.constant
            for a, b in zip(self.subscripts, other.subscripts)
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        subs = ", ".join(str(s) for s in self.subscripts)
        kind = "store" if self.is_store else "load"
        return f"{self.array.name}[{subs}] ({kind})"
