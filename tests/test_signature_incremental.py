"""Incremental state-signature equivalence.

The per-set fragment cache behind ``ClusterCache.state_signature`` must
be *exactly* transparent: after any interleaving of mutations — scalar
accesses, batched accesses (whose inlined hit/fill/snoop paths mark
dirtiness separately), translations and resets — the fragment-served
signature must equal both

* the from-scratch ``_signature_walk`` over the same state, and
* a recomputation with every fragment dropped (``invalidate_fragments``).

Order matters: the fast path is probed FIRST, so a mutation hook missed
anywhere would leave a stale fragment behind and show up as a mismatch
here.  A never-probed twin system receiving the identical stream pins
the other direction: probing (which prunes expired in-flight entries in
place) must never change observable behaviour.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.machine import four_cluster, heterogeneous, two_cluster
from repro.memory.hierarchy import DistributedMemorySystem

_MACHINES = [two_cluster, four_cluster, heterogeneous]
_INFINITE = 1 << 60


def _drive(memory, rng, n_ops, probe=None):
    """Random mutation stream; calls ``probe(time)`` now and then."""
    n_clusters = len(memory.caches)
    time = 0
    unit = memory.signature_shift_unit()
    for _ in range(n_ops):
        action = rng.choices(
            ["access", "batch", "translate", "reset", "probe"],
            weights=[6, 4, 1, 1, 3],
        )[0]
        if action == "access":
            time += rng.randrange(0, 4)
            memory.access(
                rng.randrange(n_clusters),
                rng.randrange(0, 4096) * rng.choice([1, 4, 8]),
                rng.random() < 0.35,
                time,
            )
        elif action == "batch":
            k = rng.randrange(1, 12)
            clusters, addresses, stores, nominals = [], [], [], []
            for _ in range(k):
                time += rng.randrange(0, 3)
                clusters.append(rng.randrange(n_clusters))
                addresses.append(rng.randrange(0, 4096) * rng.choice([1, 8]))
                stores.append(rng.random() < 0.35)
                nominals.append(time)
            ready = [None] * k
            slacks = [rng.choice([0, 3, _INFINITE]) for _ in range(k)]
            index = 0
            while index < k:
                consumed = memory.access_batch(
                    clusters, addresses, stores, nominals, 0, slacks,
                    ready, index, k,
                )
                assert consumed >= 1
                index += consumed
        elif action == "translate":
            delta_t = rng.randrange(0, 50)
            delta_a = rng.randrange(-4, 5) * unit
            memory.translate(delta_t, delta_a)
            time += delta_t
        elif action == "reset":
            memory.reset()
            time = 0
        elif probe is not None:
            probe(time)
    return time


class TestIncrementalSignature:
    @given(seed=st.integers(0, 100_000))
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fast_path_equals_from_scratch(self, seed):
        rng = random.Random(seed)
        memory = DistributedMemorySystem(rng.choice(_MACHINES)())
        unit = memory.signature_shift_unit()

        def probe(time):
            base = time - rng.randrange(0, 8)
            shift = rng.randrange(-2, 3) * unit
            # Non-destructive reference walk first, then the
            # fragment-served fast path (which prunes and caches), then
            # a full recomputation with every fragment dropped.
            walks = tuple(
                cache._signature_walk(base, shift)
                for cache in memory.caches
            )
            fast = memory.state_signature(base, shift)
            assert fast[0] == walks, seed
            for cache in memory.caches:
                cache.invalidate_fragments()
            assert memory.state_signature(base, shift) == fast, seed

        _drive(memory, rng, n_ops=60, probe=probe)
        probe(_drive(memory, rng, n_ops=5))

    @given(seed=st.integers(0, 100_000))
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_probing_is_behaviour_invisible(self, seed):
        """A system probed throughout must stay bit-identical to a twin
        running the same stream unprobed.

        Probes prune in-flight entries expired relative to their base,
        so — like the steady-state detectors — they query at the current
        simulation time (monotone between resets; a reset clears the
        in-flight tables in both systems).  The final signatures, the
        counters, and the behaviour of a shared continuation stream must
        all be unaffected by the extra probes."""
        machine = random.Random(seed).choice(_MACHINES)()
        probed = DistributedMemorySystem(machine)
        silent = DistributedMemorySystem(machine)
        end = _drive(
            probed, random.Random(seed), n_ops=60,
            probe=lambda time: probed.state_signature(time),
        )
        silent_end = _drive(
            silent, random.Random(seed), n_ops=60, probe=lambda time: None
        )
        assert end == silent_end
        assert probed.counters() == silent.counters()
        assert probed.state_signature(end) == silent.state_signature(end)
        # The pruned system must keep *behaving* identically too:
        rng = random.Random(seed + 1)
        n_clusters = len(machine.clusters)
        for step in range(40):
            cluster = rng.randrange(n_clusters)
            address = rng.randrange(0, 4096) * rng.choice([1, 4, 8])
            store = rng.random() < 0.35
            end += rng.randrange(0, 4)
            a = probed.access(cluster, address, store, end)
            b = silent.access(cluster, address, store, end)
            assert (a.ready_time, a.level, a.merged) == (
                b.ready_time, b.level, b.merged
            ), (seed, step)
        assert probed.counters() == silent.counters()
        assert probed.state_signature(end) == silent.state_signature(end)

    @given(seed=st.integers(0, 100_000))
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_invalid_strip_path_agrees(self, seed):
        """The invalid-stripping probe (served from the same fragments)
        must match a from-scratch walk with the same escape hatch."""
        rng = random.Random(seed)
        memory = DistributedMemorySystem(rng.choice(_MACHINES)())
        time = _drive(memory, rng, n_ops=50)
        walk_invalid, walks = [], []
        for cache in memory.caches:
            collected = []
            walks.append(cache._signature_walk(time, 0, collected))
            walk_invalid.append(collected)
        fast_invalid = []
        fast = memory.state_signature(time, 0, invalid_out=fast_invalid)
        assert fast[0] == tuple(walks), seed
        assert fast_invalid == [
            (index, address)
            for index, collected in enumerate(walk_invalid)
            for address in collected
        ], seed
