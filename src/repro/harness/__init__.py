"""Experiment harness: the cell grid engine, sweeps, tables, charts."""

from .charts import render_bar, render_figure
from .grid import (
    CellSpec,
    ExperimentGrid,
    GridStats,
    kernel_fingerprint,
    locality_fingerprint,
    machine_from_key,
    machine_key,
)
from .io import figure_to_csv, figure_to_json, load_records, records_to_csv, records_to_json
from .report import figure_table, format_float, format_table
from .scenarios import (
    GroupSpec,
    LocalitySpec,
    MachineSpec,
    ScenarioOutcome,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from .sweep import (
    DEFAULT_THRESHOLDS,
    Bar,
    FigureData,
    figure5,
    figure6,
    suite_bar,
    unified_reference,
)

__all__ = [
    "Bar",
    "CellSpec",
    "DEFAULT_THRESHOLDS",
    "ExperimentGrid",
    "FigureData",
    "GridStats",
    "GroupSpec",
    "LocalitySpec",
    "MachineSpec",
    "ScenarioOutcome",
    "ScenarioSpec",
    "all_scenarios",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "kernel_fingerprint",
    "locality_fingerprint",
    "machine_from_key",
    "machine_key",
    "figure5",
    "figure6",
    "figure_table",
    "figure_to_csv",
    "figure_to_json",
    "load_records",
    "records_to_csv",
    "records_to_json",
    "format_float",
    "format_table",
    "render_bar",
    "render_figure",
    "suite_bar",
    "unified_reference",
]
