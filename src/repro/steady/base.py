"""The steady-state detection protocol and its telemetry records.

Lockstep simulation of a modulo-scheduled loop is highly repetitive at
two granularities: the ``NTIMES`` *entries* of the innermost loop repeat
each other once the memory system warms up, and — for single-entry
streaming kernels — the *iterations* of the modulo pipeline repeat
within one entry.  Both phenomena are exploited by detectors that share
one shape, captured here as the :class:`SteadyStateDetector` protocol:

1. **signature capture** — at each boundary of its granularity the
   detector snapshots the behaviour-relevant state in a normalized,
   hashable form (shift-normalized
   :meth:`~repro.memory.hierarchy.DistributedMemorySystem.state_signature`
   plus whatever pipeline-local state the granularity carries);
2. **period detection** — a repeated snapshot means the simulation has
   entered a cycle;
3. **exactness proof** — before anything is skipped, the detector proves
   the remaining *input* (the affine address stream) is the detected
   cycle's input translated by the exact shift under which the
   signatures compared equal; detection is best-effort, the proof is
   not;
4. **counters-delta replay** — the skipped units' (stall,
   statistics-delta) records are applied arithmetically, so results are
   bit-identical to full simulation.

A detector that cannot prove step 3 simply never fires and the
simulation proceeds exactly as with detection off.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple

__all__ = [
    "STEADY_MODES",
    "Replay",
    "SteadyState",
    "IterationSteadyState",
    "SteadyStateReport",
    "SteadyStateDetector",
    "resolve_steady_mode",
    "validate_steady_mode",
]

#: The detector selections the simulator understands.  ``auto`` picks
#: per kernel: entry-level memoization for multi-entry loops, the
#: iteration-level detector for single-entry (streaming) loops.
STEADY_MODES = ("off", "entry", "iteration", "auto")


def validate_steady_mode(mode: str) -> str:
    """Return ``mode`` or raise on an unknown selection."""
    if mode not in STEADY_MODES:
        raise KeyError(
            f"unknown steady mode {mode!r}; choose from {STEADY_MODES}"
        )
    return mode


def resolve_steady_mode(mode: Optional[str], exact: bool = False) -> str:
    """Resolve the effective mode from the (mode, exact-flag) pair.

    ``exact=True`` always wins — it is the historical escape hatch and
    must keep meaning "simulate every instance".  ``None`` defaults to
    ``auto``; results are bit-identical across all modes either way.
    """
    if exact:
        return "off"
    return validate_steady_mode(mode if mode is not None else "auto")


@dataclass(frozen=True)
class Replay:
    """What a confirmed steady state lets the driver skip.

    The detector has already applied the skipped units' statistics
    deltas to the memory system when it hands this back; the driver
    accounts the stall cycles and drops ``skipped`` units from its
    remaining work.
    """

    skipped: int  #: units (entries or iterations) not simulated
    stall_cycles: int  #: stall the skipped units would have accumulated
    record: object = None  #: detector-specific telemetry record


@dataclass(frozen=True)
class SteadyState:
    """How entry-level memoization split a run (``simulator.steady_state``)."""

    detected_at: int  #: index of the first replayed entry
    period: int  #: length of the repeating entry cycle
    simulated_entries: int  #: entries executed instance by instance
    replayed_entries: int  #: entries replayed from the memo record


@dataclass(frozen=True)
class IterationSteadyState:
    """One iteration-level fast-forward inside a single loop entry."""

    entry: int  #: which loop entry the detection happened in
    detected_at: int  #: modulo-pipeline group index where the match confirmed
    period: int  #: repeating cycle length, in iterations (line-aligned)
    simulated_iterations: int  #: iterations executed instance by instance
    replayed_iterations: int  #: iterations replayed from the cycle deltas
    #: Frozen live (M/S) warm-up lines the stale-state proof stripped
    #: from the signature comparison (0 when the states matched whole).
    pruned_live_lines: int = 0


@dataclass(frozen=True)
class SteadyStateReport:
    """Combined steady-state telemetry of one simulation run."""

    mode: str  #: resolved detector selection (off/entry/iteration/auto)
    entry: Optional[SteadyState] = None
    iterations: Tuple[IterationSteadyState, ...] = ()

    @property
    def entries_replayed(self) -> int:
        return self.entry.replayed_entries if self.entry else 0

    @property
    def iterations_replayed(self) -> int:
        return sum(rec.replayed_iterations for rec in self.iterations)

    @property
    def iteration_period(self) -> Optional[int]:
        """Cycle length of the first iteration-level detection, if any."""
        return self.iterations[0].period if self.iterations else None

    @property
    def detected(self) -> bool:
        return self.entry is not None or bool(self.iterations)


class SteadyStateDetector(ABC):
    """One steady-state detection strategy at one boundary granularity.

    The simulator drives a detector through a stream of boundaries of
    its granularity (loop entries for ``entry``, modulo-pipeline groups
    for ``iteration``).  ``boundary`` is called *before* simulating the
    unit starting there and may answer with a :class:`Replay` once the
    four protocol steps (capture, detect, prove, replay) have all
    succeeded; ``commit`` is called *after* a unit was simulated in
    full, so the detector can record its (stall, counters-delta) record.

    ``time`` is the granularity's own monotonic time coordinate — each
    detector defines it and anchors its signatures with it, and a driver
    must supply the coordinate its detector documents: the entry
    detector takes the absolute clock at the entry start; the iteration
    detector (whose protocol objects are handed out per entry by the
    :class:`~repro.steady.iteration.IterationSteadyDetector` factory,
    since its detection state is per-entry) takes the running stall
    offset, from which it reconstructs the boundary's absolute time as
    ``entry base + group * II + offset``.
    """

    #: Mode string under which this detector is selected.
    mode: ClassVar[str]
    #: Boundary granularity: ``"entry"`` or ``"iteration"``.
    granularity: ClassVar[str]

    @abstractmethod
    def boundary(self, index: int, time: int) -> Optional[Replay]:
        """Observe the boundary before unit ``index`` at ``time``.

        Returns a :class:`Replay` when the remaining units provably
        repeat a recorded cycle, ``None`` to keep simulating.
        """

    def commit(self, index: int, stall: int) -> None:
        """Record that unit ``index`` was simulated with ``stall`` cycles."""
