"""The benchmark suite registry.

``SPEC_KERNELS`` maps the paper's eight SPECfp95 program names to the
factory producing our synthetic stand-in kernel; :func:`spec_suite`
instantiates all of them.  The registry is ordered as the paper lists the
programs (Section 5.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from ..ir.builder import Kernel
from . import kernels as _k

__all__ = [
    "SPEC_KERNELS",
    "STREAMING_LONG_KERNELS",
    "spec_suite",
    "streaming_long_suite",
    "kernel_by_name",
    "suite_stats",
]

SPEC_KERNELS: Mapping[str, Callable[[], Kernel]] = {
    "tomcatv": _k.tomcatv,
    "swim": _k.swim,
    "su2cor": _k.su2cor,
    "hydro2d": _k.hydro2d,
    "mgrid": _k.mgrid,
    "applu": _k.applu,
    "turb3d": _k.turb3d,
    "apsi": _k.apsi,
}

#: Long-stream variants of the ``NTIMES=1`` streaming kernels: 4x NITER
#: with matching array extents (the factories scale every array with
#: ``n``), per the ROADMAP item on showing the iteration-level steady
#: detector's asymptotic win and stressing memoization at production
#: scale.  Registered as their own suite so the short originals keep
#: their paper-scale footprints.
STREAMING_LONG_KERNELS: Mapping[str, Callable[[], Kernel]] = {
    "su2cor-long": lambda: _k.su2cor(n=4 * 512, name="su2cor-long"),
    "applu-long": lambda: _k.applu(n=4 * 1024, name="applu-long"),
    "turb3d-long": lambda: _k.turb3d(n=4 * 512, name="turb3d-long"),
}


def streaming_long_suite(names: Optional[List[str]] = None) -> List[Kernel]:
    """Instantiate the long-stream suite (or a named subset)."""
    selected = list(STREAMING_LONG_KERNELS) if names is None else names
    unknown = [n for n in selected if n not in STREAMING_LONG_KERNELS]
    if unknown:
        raise KeyError(
            f"unknown kernels {unknown}; known: {list(STREAMING_LONG_KERNELS)}"
        )
    return [STREAMING_LONG_KERNELS[name]() for name in selected]


def spec_suite(names: Optional[List[str]] = None) -> List[Kernel]:
    """Instantiate the suite (or the named subset, in registry order)."""
    selected = list(SPEC_KERNELS) if names is None else names
    unknown = [n for n in selected if n not in SPEC_KERNELS]
    if unknown:
        raise KeyError(f"unknown kernels {unknown}; known: {list(SPEC_KERNELS)}")
    return [SPEC_KERNELS[name]() for name in selected]


def kernel_by_name(name: str) -> Kernel:
    """Instantiate one suite kernel by its SPECfp95 name."""
    try:
        factory = SPEC_KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; known: {list(SPEC_KERNELS)}"
        ) from None
    return factory()


def suite_stats() -> Dict[str, Dict[str, int]]:
    """Per-kernel size statistics (the Section 5.1 workload table)."""
    return {kernel.name: kernel.loop.stats() for kernel in spec_suite()}
