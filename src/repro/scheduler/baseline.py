"""The Baseline scheduler (Section 4.1).

Identical to the engine's default behaviour: cluster selection for *every*
operation — memory ones included — uses only the register output-edge
profit (plus workload balance as tie-break).  This is the scheduler of
Sánchez & González's earlier clustered-VLIW work, which the paper uses as
the comparison point; it still performs binding prefetching when given a
locality analyzer and a threshold below 1.0 (the Figure 5/6 sweeps apply
the threshold to both schedulers).
"""

from __future__ import annotations

from typing import Optional

from .base import CommunicationAwareScheduler, SchedulerConfig

__all__ = ["BaselineScheduler"]


class BaselineScheduler(CommunicationAwareScheduler):
    """Register-communication-aware modulo scheduler."""

    name = "baseline"

    def __init__(
        self,
        config: Optional[SchedulerConfig] = None,
        locality=None,
    ):
        super().__init__(config=config, locality=locality)
