"""Extension: the schedulers on DSP/multimedia workloads.

The paper motivates clustered VLIWs with embedded/DSP processors
(Section 1) but evaluates on SPECfp95.  This extension runs the classic
DSP kernel set (FIR, IIR, dot product, vector sum, complex MAC,
autocorrelation) through the same Baseline-vs-RMCA comparison on the
realistic 4-cluster machine.

DSP loops are hotter and smaller than the SPEC ones: footprints close to
the cache, deep reductions, heavy group reuse.  Measured shape: RMCA
wins big where conflict structure exists and the II has slack (FIR 0.72,
IIR 0.61), ties on the streaming/reduction loops — and *loses* on
complex MAC: separating the aliasing X/W streams costs an extra II for
communications, while the threshold-0.25 binding prefetch already hides
the misses that co-location would cause.  A genuine RMCA failure mode:
miss-count minimization is the wrong objective once prefetching has made
misses latency-free.
"""

from repro.harness.report import format_table
from repro.harness.scenarios import run_scenario

from conftest import save_and_print


def _run(grid):
    """The whole study is the registered ``dsp-4cluster`` scenario: its
    cells run on the shared session grid (one wave, deduplicated and
    cached) instead of a raw ``run_cell`` loop."""
    outcome = run_scenario("dsp-4cluster", grid=grid)
    rows = []
    ratios = []
    for kernel in outcome.kernels:
        base = outcome.result_for("baseline", 0.25, kernel.name)
        rmca = outcome.result_for("rmca", 0.25, kernel.name)
        ratio = rmca.total_cycles / base.total_cycles
        ratios.append(ratio)
        rows.append(
            (
                kernel.name,
                base.schedule.ii,
                rmca.schedule.ii,
                base.total_cycles,
                rmca.total_cycles,
                round(ratio, 3),
            )
        )
    return rows, ratios


def test_dsp_suite_extension(benchmark, results_dir, grid):
    rows, ratios = benchmark.pedantic(
        _run, args=(grid,), rounds=1, iterations=1
    )
    table = format_table(
        ["kernel", "II (baseline)", "II (rmca)", "baseline cycles",
         "rmca cycles", "rmca/baseline"],
        rows,
    )
    save_and_print(results_dir, "ext_dsp_suite", table)

    # RMCA wins on average and on most kernels; the complex-MAC case
    # (extra II for communications while prefetching already hides the
    # misses) may lose, but never catastrophically.
    assert sum(ratios) / len(ratios) <= 1.05
    assert sum(1 for ratio in ratios if ratio <= 1.0) >= len(ratios) // 2
    assert all(ratio <= 1.6 for ratio in ratios), ratios
