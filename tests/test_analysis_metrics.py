"""Tests for schedule quality metrics."""

import pytest

from repro.analysis.metrics import schedule_metrics, workload_balance
from repro.machine import BusConfig, two_cluster, unified
from repro.scheduler import BaselineScheduler


class TestWorkloadBalance:
    def test_unified_always_balanced(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        assert workload_balance(schedule) == 1.0

    def test_balance_in_unit_interval(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        assert 0.0 <= workload_balance(schedule) <= 1.0

    def test_empty_cluster_gives_zero(self, saxpy):
        machine = two_cluster()
        schedule = BaselineScheduler().schedule(saxpy, machine)
        counts = [0, 0]
        for placement in schedule.placements.values():
            counts[placement.cluster] += 1
        if 0 in counts:
            assert workload_balance(schedule) == 0.0
        else:
            assert workload_balance(schedule) > 0.0


class TestScheduleMetrics:
    def test_ipc(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        metrics = schedule_metrics(schedule)
        assert metrics.ipc == len(schedule.placements) / schedule.ii

    def test_ii_inflation_at_least_one(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        metrics = schedule_metrics(schedule)
        assert metrics.ii_inflation >= 1.0

    def test_comms_per_iteration(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        metrics = schedule_metrics(schedule)
        assert metrics.comms_per_iteration == len(schedule.communications)

    def test_bus_fraction_bounded_for_bounded_pool(self, stencil):
        machine = two_cluster(register_bus=BusConfig(count=2, latency=1))
        schedule = BaselineScheduler().schedule(stencil, machine)
        metrics = schedule_metrics(schedule)
        assert 0.0 <= metrics.bus_busy_fraction <= 1.0

    def test_pressure_reported(self, stencil, two_cluster_machine):
        schedule = BaselineScheduler().schedule(stencil, two_cluster_machine)
        metrics = schedule_metrics(schedule)
        assert metrics.max_pressure >= 1

    def test_stage_count_matches_schedule(self, saxpy, unified_machine):
        schedule = BaselineScheduler().schedule(saxpy, unified_machine)
        assert schedule_metrics(schedule).stage_count == schedule.stage_count
