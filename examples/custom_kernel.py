#!/usr/bin/env python
"""Writing your own kernel with the builder DSL.

Builds a 2-D correlation kernel with a loop-carried accumulator, shows
the locality analysis (per-load miss ratios, group-reuse structure) and
how the two schedulers partition it across clusters, including the
binding-prefetch decision at different thresholds.

Usage::

    python examples/custom_kernel.py
"""

from repro import LoopBuilder, SamplingCME, make_scheduler, simulate, two_cluster
from repro.cme import analyze_reuse


def build_kernel():
    """Correlation of two images, row-window accumulation.

    ``ACC = ACC + IMG[j][i] * TPL[j][i]; OUT[j][i] = IMG[j][i+1] - IMG[j][i-1]``
    """
    n = 48
    b = LoopBuilder("correlate")
    j = b.dim("j", 1, n - 1)
    i = b.dim("i", 1, n - 1)
    img = b.array("IMG", (n, n))
    tpl = b.array("TPL", (n, n))
    out = b.array("OUT", (n, n))

    centre = b.load(img, [b.aff(j=1), b.aff(i=1)], name="ld_img")
    east = b.load(img, [b.aff(j=1), b.aff(1, i=1)], name="ld_east")
    west = b.load(img, [b.aff(j=1), b.aff(-1, i=1)], name="ld_west")
    t = b.load(tpl, [b.aff(j=1), b.aff(i=1)], name="ld_tpl")

    prod = b.fmul(centre, t, name="mul")
    acc = b.fadd(b.prev_value("acc", distance=1), prod, dest="acc", name="accum")
    grad = b.fsub(east, west, name="grad")
    b.store(out, [b.aff(j=1), b.aff(i=1)], grad, name="st_out")
    return b.build()


def main():
    kernel = build_kernel()
    machine = two_cluster()
    locality = SamplingCME(max_points=1024)
    loop = kernel.loop

    print(f"kernel: {loop}")
    print()

    # Reuse structure: which loads are uniformly generated with which.
    infos = analyze_reuse(loop.refs, loop, machine.cluster(0).cache.line_size)
    print("reuse analysis (per memory reference):")
    for op, info in zip(loop.memory_operations, infos):
        leaders = [loop.memory_operations[g].name for g in info.group_leaders]
        print(
            f"  {op.name:8s} stride={info.stride:+4d}B "
            f"temporal={info.temporal} spatial={info.spatial} "
            f"reuses-from={leaders or '-'}"
        )
    print()

    # Miss ratios if all memory ops shared one local cache.
    cache = machine.cluster(0).cache
    print(f"miss ratios with all refs in one {cache.size}B cache:")
    for op in loop.memory_operations:
        ratio = locality.miss_ratio(loop, op, loop.memory_operations, cache)
        print(f"  {op.name:8s} {ratio:.2f}")
    print()

    for threshold in (1.0, 0.25):
        for name in ("baseline", "rmca"):
            scheduler = make_scheduler(name, threshold=threshold, locality=locality)
            schedule = scheduler.schedule(kernel, machine)
            schedule.validate()
            result = simulate(schedule)
            assignment = {
                op.name: schedule.cluster_of(op.name)
                for op in loop.memory_operations
            }
            prefetched = schedule.prefetched_loads()
            print(
                f"{name:8s} thr={threshold:4.2f}: II={schedule.ii} "
                f"total={result.total_cycles:6d} "
                f"(stall {result.stall_cycles}) "
                f"mem clusters={assignment} prefetched={prefetched or '-'}"
            )
    print()
    print(
        "RMCA keeps the IMG loads together (group reuse) while the baseline"
        " splits by register edges; lowering the threshold trades compute"
        " cycles for stall cycles via binding prefetching."
    )


if __name__ == "__main__":
    main()
