"""Iteration-level steady-state detection inside a single loop entry.

The entry-level memoizer can do nothing for ``NTIMES=1`` streaming
kernels (su2cor, applu, turb3d): there is only one entry, so every one
of its ``NITER`` iterations is simulated the slow way even though the
modulo pipeline provably settles into a periodic pattern a few hundred
iterations in.  This detector closes that gap.

How it works
------------
The instance stream of one entry is partitioned into *modulo-pipeline
groups*: group ``k`` holds the instances with nominal issue times in
``[k*II, (k+1)*II)`` — one instance per operation (the iteration
``k - stage(op)`` instance) once the pipeline is full.  At each group
boundary the behaviour of the remaining simulation is a deterministic
function of

* the memory-system state (cache tags/MSI/LRU, pending fills, MSHR and
  bus horizons), captured by the shift/time-normalized
  :meth:`~repro.memory.hierarchy.DistributedMemorySystem.state_signature`;
* the in-flight pipeline state: the relative readiness of the recent
  producer instances that future consumers still read (a window of
  ``max(distance + stage gap)`` groups), plus the running stall offset
  (normalized away by anchoring both snapshots at their own boundary
  time);
* the remaining address stream — affine, hence ``base + stride * i``
  per reference.

Two boundaries ``k`` and ``k + M`` with equal snapshots (the memory
signature compared under an address shift of ``M * stride``) therefore
replay each other exactly, iteration for iteration, as long as every
reference advances by the *same* per-iteration stride (the exactness
proof obligation — the analogue of the entry memoizer's uniform-shift
check, verified once per kernel) and the skipped groups stay inside the
full-pipeline region.  The detector then fast-forwards ``t`` whole
periods: it adds ``t ×`` the cycle's counter deltas and stall cycles,
shrinks the remaining iteration count by ``t*M`` (the tail simulates
identically because the state at the cut *is* the fast-forwarded state
up to a uniform (time, address) translation), and finally re-anchors the
memory system with
:meth:`~repro.memory.hierarchy.DistributedMemorySystem.translate` so
any subsequent loop entry sees exactly the state full simulation would
have produced.

Signatures walk the whole cache state, so computing one per boundary
would cost more than it saves.  Detection is therefore two-phase: a
cheap per-group record — (stall delta, statistics deltas) — is kept for
every group, candidate periods are spotted by pure tuple comparisons,
and the full signature is only computed twice per candidate (capture
and confirm).  Candidate periods are multiples of the smallest ``q``
with ``q * stride`` a whole number of cache lines, so the signature
shift always commutes with line/set mapping.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Tuple

from .base import IterationSteadyState, Replay, SteadyStateDetector

__all__ = ["IterationSteadyDetector"]

#: Placeholder for a window instance that does not exist (pipeline edge).
_ABSENT = object()


class IterationSteadyDetector:
    """Factory/precomputation half of iteration-level detection.

    Built once per :class:`~repro.simulator.executor.LockstepSimulator`
    (whose precomputed tables it reads as a friend).  This class is
    deliberately *not* the :class:`SteadyStateDetector` implementation:
    iteration-level detection is stateful per loop entry, so
    :meth:`begin_entry` hands out one protocol object (:class:`_EntryRun`)
    per entry, and that is what the executor's group loop drives through
    ``boundary``/``commit``.
    """

    mode = "iteration"
    granularity = "iteration"

    #: How many multiples of the line-aligned base period the cheap
    #: period search tries at each boundary.
    MAX_PERIODS = 16

    def __init__(self, simulator):
        self.sim = simulator
        self.ii: int = simulator.schedule.ii
        self.n_ops: int = simulator._n_ops
        placements = simulator.schedule.placements
        self.stage: List[int] = [
            placements[name].time // self.ii for name in simulator._op_names
        ]
        self.max_stage = max(self.stage, default=0)
        # Exactness proof obligation: every memory reference must advance
        # by the same per-iteration stride, or no single address shift
        # can align two boundaries and detection stays off.
        strides = set(self._iteration_strides())
        self.enabled = len(strides) <= 1
        self.stride: int = strides.pop() if strides else 0
        unit = simulator.memory.signature_shift_unit()
        # Smallest period whose cumulative shift is line-aligned.
        sub = self.stride % unit
        self.q: int = 1 if sub == 0 else unit // gcd(unit, sub)
        # Ready-value window: how many groups back a future consumer can
        # reach (flow distance plus consumer/producer stage gap).
        self.window = max(
            (
                distance + self.stage[v] - self.stage[src]
                for v in range(self.n_ops)
                for src, distance, _extra in simulator._flows[v]
            ),
            default=0,
        )
        # First boundary where the pipeline is full and the whole ready
        # window exists.
        self.k0 = self.max_stage + self.window
        self.group_bounds, self.n_groups = simulator.instance_group_bounds()
        self.detections: List[IterationSteadyState] = []

    # ------------------------------------------------------------------
    def _iteration_strides(self) -> List[int]:
        """Per-iteration address stride of every memory reference.

        Affine references advance by a constant per inner iteration
        independent of the outer point, so one probe point suffices."""
        sim = self.sim
        loop = sim.loop
        inner = loop.inner
        point = {dim.var: dim.lower for dim in loop.outer_dims}
        strides = []
        for index in range(sim._n_ops):
            ref = sim._mem_ref[index]
            if ref is None:
                continue
            point[inner.var] = inner.lower
            first = ref.address(point)
            point[inner.var] = inner.lower + inner.step
            strides.append(ref.address(point) - first)
        return strides

    # ------------------------------------------------------------------
    def begin_entry(
        self,
        entry: int,
        base: int,
        ready,
        mem_base: List[int],
        mem_stride: List[int],
        final_entry: bool = True,
    ):
        """A fresh per-entry detection run, or ``None`` when this kernel
        can never confirm a period (non-uniform strides, or too few
        iterations for capture + confirm + at least one skipped period).

        ``ready`` is any view with a ``get(iteration, op) -> Optional[int]``
        read path onto the entry's per-instance ready times — the scalar
        executor hands its :class:`~repro.simulator.executor.ReadyWindow`
        ring, the vectorized engine a reconstructing view."""
        if not self.enabled:
            return None
        if self.sim.n_iterations < self.k0 + 4 * self.q:
            return None
        return _EntryRun(
            self, entry, base, ready, mem_base, mem_stride, final_entry
        )


class _EntryRun(SteadyStateDetector):
    """The iteration-granularity :class:`SteadyStateDetector`: detection
    state for the modulo-pipeline groups of one loop entry.

    ``niter`` tracks the *remaining* iteration count of the
    fast-forwarded ("pretend") frame: after a skip the executor keeps
    walking the same group indices with a smaller effective NITER, which
    is exactly a continuation of the smaller-NITER run — so the run
    re-arms and can detect (and skip) again in that frame."""

    mode = "iteration"
    granularity = "iteration"

    def __init__(self, detector: IterationSteadyDetector, entry: int,
                 base: int, ready,
                 mem_base: List[int], mem_stride: List[int],
                 final_entry: bool = True):
        self.det = detector
        self.entry = entry
        self.base = base
        self.ready = ready
        self.mem_base = mem_base
        self.mem_stride = mem_stride
        self.final_entry = final_entry
        self.active = True
        #: Remaining iterations in the current (pretend) frame.
        self.niter = detector.sim.n_iterations
        #: (stall delta, counters delta) per finished group.
        self.records: List[Optional[Tuple[int, Tuple[int, ...]]]] = (
            [None] * detector.n_groups
        )
        #: Records below this group index may not be compared (start of
        #: the detection window; bumped past each fast-forward cut).
        self.valid_from = detector.k0
        self.prev_offset = 0
        self.prev_values: Optional[Tuple[int, ...]] = None
        # (k1, M, signature, ghosts, ready snapshot, offset, counters,
        # pruned signature or None) of a cheaply-spotted candidate
        # awaiting signature confirmation.
        self.pending = None
        # Confirm-failure backoff: a signature mismatch under a periodic
        # record stream means the state is still developing (cache fill,
        # trailing-edge transients), so retrying every period would burn
        # a full state walk each time on kernels that never settle.
        # Exponential backoff bounds that cost at O(log) walks while the
        # state warms up, capped so a late-settling kernel is still
        # caught reasonably soon after it stabilizes.
        self.next_search = 0
        self.backoff = 2 * detector.q
        self.ff_time_delta = 0
        self.ff_addr_shift = 0
        # The live-scar pruned comparison (second confirm tier) costs an
        # extra state walk per candidate, so it is armed only once the
        # whole-state comparison has failed — kernels whose states match
        # outright never pay for it.
        self.try_pruned = False

    # ------------------------------------------------------------------
    def boundary(self, k: int, offset: int) -> Optional[Replay]:
        """Observe the boundary before group ``k`` at stall ``offset``."""
        det = self.det
        if k < det.k0:
            return None
        if k >= self.niter:
            # Pipeline drain of the (possibly fast-forwarded) frame:
            # groups are partial from here on, nothing left to detect.
            self.active = False
            return None
        values = det.sim.memory.counters_tuple()
        if self.prev_values is not None:
            self.records[k - 1] = (
                offset - self.prev_offset,
                tuple(a - b for a, b in zip(values, self.prev_values)),
            )
        self.prev_offset = offset
        self.prev_values = values

        if self.pending is not None:
            (k1, period, sig1, ghosts1, snap1, offset1, counters1,
             sig1_pruned) = self.pending
            if self.records[k - 1] != self.records[k - 1 - period]:
                self.pending = None  # cycle broke while waiting
            elif k == k1 + period:
                self.pending = None
                base_k = self.base + k * det.ii + offset
                ghosts2: List[Tuple[int, int]] = []
                sig2 = det.sim.memory.state_signature(
                    base_k, period * det.stride, invalid_out=ghosts2
                )
                snap2 = self._ready_snapshot(k, base_k)
                if snap2 == snap1 and sig2 == sig1:
                    replay = self._confirm(
                        k1, period, offset1, counters1, k, offset,
                        ghosts1, ghosts2,
                    )
                    if replay is not None:
                        return replay
                elif snap2 == snap1 and sig1_pruned is None:
                    # Arm the pruned tier for the next candidate: this
                    # state may carry frozen live warm-up lines that can
                    # only ever match with the reachability proof.
                    self.try_pruned = self.final_entry
                elif snap2 == snap1:
                    # Second tier: the whole-state comparison failed, so
                    # retry with provably-unreachable live lines
                    # stripped (frozen warm-up scars never translate
                    # with the sweep).  Each boundary prunes against its
                    # *own* remaining stream: the store trail grows by
                    # one period between capture and confirm, and only
                    # per-side envelopes keep the kept/pruned frontier
                    # at the same shift-relative position in both
                    # states.
                    ghosts2p: List[Tuple[int, int]] = []
                    live2: List[Tuple[int, int, str]] = []
                    sig2_pruned = det.sim.memory.state_signature(
                        base_k, period * det.stride, invalid_out=ghosts2p,
                        live_prune=self._live_prune_predicate(k),
                        live_out=live2,
                    )
                    if sig2_pruned == sig1_pruned:
                        replay = self._confirm(
                            k1, period, offset1, counters1, k, offset,
                            ghosts1, ghosts2p, len(live2),
                        )
                        if replay is not None:
                            return replay
                # State not periodic yet despite periodic statistics:
                # back off before spending another pair of state walks.
                self.next_search = k + self.backoff
                self.backoff = min(self.backoff * 2, 32 * det.q)
            else:
                return None
        if self.pending is None and k >= self.next_search:
            self._search(k, offset)
        return None

    # ------------------------------------------------------------------
    def _search(self, k: int, offset: int) -> None:
        """Cheap period search: spot a candidate from group records alone."""
        det = self.det
        records = self.records
        for j in range(1, det.MAX_PERIODS + 1):
            period = j * det.q
            if k - 2 * period < self.valid_from:
                break
            if all(
                records[g] == records[g - period] for g in range(k - period, k)
            ):
                base_k = self.base + k * det.ii + offset
                ghosts: List[Tuple[int, int]] = []
                sig = det.sim.memory.state_signature(
                    base_k, 0, invalid_out=ghosts
                )
                # Fallback signature with provably-unreachable live
                # lines stripped (set-band reachability): frozen live
                # warm-up scars never translate with the sweep, so a
                # state carrying one can only match under this pruned
                # comparison.  Final entries only: translate() would
                # misplace the stripped lines for a later entry's
                # re-sweep.
                sig_pruned = None
                if self.try_pruned:
                    sig_pruned = det.sim.memory.state_signature(
                        base_k, 0, invalid_out=[],
                        live_prune=self._live_prune_predicate(k),
                    )
                self.pending = (
                    k,
                    period,
                    sig,
                    ghosts,
                    self._ready_snapshot(k, base_k),
                    offset,
                    det.sim.memory.counters(),
                    sig_pruned,
                )
                return

    def _live_prune_predicate(self, k: int):
        """Set-band reachability proof for frozen *live* (M/S) lines.

        Returns a ``(cluster, line address) -> bool`` predicate that is
        True only when the remaining access stream provably never
        interacts with the line: (a) no reference's remaining byte
        envelope — iterations ``max(0, k - k0)..niter-1``, which covers
        the tail *and* every skipped period (the phantom argument of
        :meth:`_scars_unreachable`) — overlaps the line's span from any
        cluster, so it is never hit, revived or snooped; and (b) no
        same-cluster reference's envelope maps into the line's cache
        set, so it can never be weighed in (or evicted by) a fill.  Such
        a line is behaviourally inert and may be stripped from the
        signature comparison, which is what lets kernels whose warm-up
        leaves non-translating live scars (turb3d on 2-cluster) still
        prove their steady period.
        """
        det = self.det
        sim = det.sim
        caches = sim.memory.caches
        span = sim.memory.signature_shift_unit()
        envelopes: List[Tuple[int, int]] = []
        byte_bands: Dict[int, List[Tuple[int, int]]] = {}
        for op, lo, hi in self._remaining_envelopes(k):
            envelopes.append((lo, hi))
            byte_bands.setdefault(sim._cluster[op], []).append((lo, hi))

        def prunable(cluster: int, line_addr: int) -> bool:
            # (a) address reachability, widened to a full shift unit so
            # any cache's line span is covered (mirrors the ghost check).
            for lo, hi in envelopes:
                if line_addr <= hi and line_addr + span - 1 >= lo:
                    return False
            # (b) set reachability from the line's own cluster.
            config = caches[cluster].config
            line_size = config.line_size
            n_sets = config.n_sets
            scar_set = config.set_index(line_addr)
            for lo, hi in byte_bands.get(cluster, ()):
                first = lo // line_size
                last = hi // line_size
                if last - first + 1 >= n_sets:
                    return False
                s0 = first % n_sets
                s1 = last % n_sets
                if s0 <= s1:
                    if s0 <= scar_set <= s1:
                        return False
                elif scar_set >= s0 or scar_set <= s1:
                    return False
            return True

        return prunable

    def _remaining_envelopes(self, k: int) -> List[Tuple[int, int, int]]:
        """Per-reference byte envelope of the remaining stream from
        boundary ``k``: ``(op index, lo, hi)`` over iterations
        ``max(0, k - k0)..niter-1``, with ``hi`` widened to the last
        element's final byte.  This is the soundness-critical range both
        stale-state proofs (:meth:`_scars_unreachable` for invalid
        ghosts, :meth:`_live_prune_predicate` for live scars) test
        against — the range already covers every skipped period, which
        is what makes the phantom argument work."""
        det = self.det
        sim = det.sim
        i_min = max(0, k - det.k0)
        i_max = self.niter - 1
        envelopes: List[Tuple[int, int, int]] = []
        for op in range(det.n_ops):
            ref = sim._mem_ref[op]
            if ref is None:
                continue
            a0 = self.mem_base[op] + self.mem_stride[op] * i_min
            a1 = self.mem_base[op] + self.mem_stride[op] * i_max
            lo = min(a0, a1)
            hi = max(a0, a1) + ref.array.element_size - 1
            envelopes.append((op, lo, hi))
        return envelopes

    def _ready_snapshot(self, k: int, base_k: int) -> Tuple[object, ...]:
        """Relative readiness of every instance future consumers can
        still read: the ``window`` groups preceding boundary ``k``,
        anchored at the boundary's own time so two periodic boundaries
        compare equal."""
        det = self.det
        ready = self.ready
        n_ops = det.n_ops
        n_iterations = self.niter
        out: List[object] = []
        for j in range(1, det.window + 1):
            group = k - j
            for op in range(n_ops):
                iteration = group - det.stage[op]
                if 0 <= iteration < n_iterations:
                    value = ready.get(iteration, op)
                    out.append(None if value is None else value - base_k)
                else:
                    out.append(_ABSENT)
        return tuple(out)

    def _scars_unreachable(self, divergent: set, k2: int) -> bool:
        """True when no divergent ghost line can ever be touched again.

        The two matched states were compared with their INVALID lines
        stripped (``divergent`` holds ``(cluster, line address)`` pairs);
        lines present in only one of them (typically frozen warm-up
        scars, whose absolute addresses never move with the sweep) are
        behaviourally inert *unless* a future access maps to one of
        their exact line addresses and revives it.  A plain
        overlap test against each reference's remaining byte envelope
        suffices for any number of skipped periods: the scars' ideal
        "phantom" images advance by exactly the per-period shift — the
        same rate the access front advances — so a scar outside the
        envelope now keeps its relative distance to the stream forever.
        Each scar is conservatively widened to a full shift unit, which
        covers any cache's line span."""
        span = self.det.sim.memory.signature_shift_unit()
        for _op, lo, hi in self._remaining_envelopes(k2):
            for _cluster, d in divergent:
                if d <= hi and d + span - 1 >= lo:
                    return False
        return True

    def _confirm(
        self,
        k1: int,
        period: int,
        offset1: int,
        counters1: Dict[str, int],
        k2: int,
        offset2: int,
        ghosts1: List[Tuple[int, int]],
        ghosts2: List[Tuple[int, int]],
        pruned_live: int = 0,
    ) -> Optional[Replay]:
        """Signature + window matched: fast-forward whole periods."""
        det = self.det
        sim = det.sim
        shift_per_period = period * det.stride
        # Skipped groups must stay inside the full-pipeline region
        # (groups 0..NITER-1 of the current frame); the tail — partial
        # period plus pipeline drain — is simulated for real.
        t = (self.niter - k2) // period
        # Ghosts are (cluster, absolute line address) pairs: cache
        # identity matters — a scar at the same address in another
        # cluster's cache is different state and must not cancel.
        divergent = {
            (cluster, g + shift_per_period) for cluster, g in ghosts1
        }.symmetric_difference(ghosts2)
        if divergent:
            # The scar-unreachability proof only covers THIS entry's
            # remaining (forward-moving) stream; a later entry re-sweeps
            # the whole address range and would touch the divergent
            # scars, so the end-of-entry state translation would no
            # longer be exact.
            if not self.final_entry:
                return None
            if not self._scars_unreachable(divergent, k2):
                return None
        if t <= 0:
            return None
        period_stall = offset2 - offset1
        counters2 = sim.memory.counters()
        delta = {key: counters2[key] - counters1[key] for key in counters2}
        sim.memory.add_counters(delta, t)
        self.ff_time_delta += t * (period * det.ii + period_stall)
        self.ff_addr_shift += t * shift_per_period
        self.niter -= t * period
        record = IterationSteadyState(
            entry=self.entry,
            detected_at=k2,
            period=period,
            simulated_iterations=self.niter,
            replayed_iterations=t * period,
            pruned_live_lines=pruned_live,
        )
        det.detections.append(record)
        # Re-arm in the fast-forwarded frame: detection may fire again
        # (a capped skip leaves more periodic groups behind the next,
        # now-closer scar horizon).
        self.prev_values = None
        self.valid_from = k2 + 1
        self.next_search = 0
        self.backoff = 2 * det.q
        return Replay(
            skipped=t * period,
            stall_cycles=t * period_stall,
            record=record,
        )

    def finish(self) -> None:
        """Re-anchor the memory system after a fast-forwarded entry.

        The tail was simulated in the fast-forwarded ("pretend") frame;
        translating by the skipped (time, address) span turns the final
        state into exactly what full simulation would have left behind,
        so entry-level memoization — or anything else — can run on top."""
        if self.ff_time_delta or self.ff_addr_shift:
            self.det.sim.memory.translate(
                self.ff_time_delta, self.ff_addr_shift
            )
