"""Loop unrolling for modulo-scheduled kernels.

Section 4.3 of the paper notes that a load with spatial locality is
scheduled with the miss latency even though only a fraction of its
instances miss, and that *"loop unrolling could be used to generate
multiple instances of the same instruction such that one of them always
miss and the other always hit"* — deferred there to future work, and the
subject of the authors' companion study [22].  This module implements
that transformation:

* the innermost loop's step is multiplied by the unroll factor,
* every operation is cloned once per unrolled copy, with registers
  renamed ``reg@u<k>`` and array subscripts shifted by ``k`` original
  steps,
* intra-iteration dependences stay within each copy; loop-carried
  dependences of distance ``d`` are re-routed to copy ``k - d`` (same new
  iteration) or to the matching copy of an earlier new iteration with the
  distance divided by the factor.

After unrolling a unit-stride stream on an 8-element line by 4, copy 0
carries the per-line miss and copies 1..3 always hit — giving the
binding-prefetch step exactly the per-instance split the paper wants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.builder import Kernel
from ..ir.ddg import DepEdge, build_ddg
from ..ir.loop import Loop, LoopDim
from ..ir.operations import Operation
from ..ir.references import AffineExpr, ArrayReference

__all__ = ["UnrollError", "unroll"]


class UnrollError(ValueError):
    """Raised when a kernel cannot be unrolled by the requested factor."""


def _copy_name(name: str, k: int) -> str:
    return f"{name}@u{k}"


def _shift_ref(ref: ArrayReference, var: str, offset: int) -> ArrayReference:
    """Shift a reference ``offset`` inner-loop steps forward."""
    subscripts = tuple(
        AffineExpr(
            constant=expr.constant + expr.coeff(var) * offset,
            coeffs=expr.coeffs,
        )
        for expr in ref.subscripts
    )
    return ArrayReference(ref.array, subscripts, is_store=ref.is_store)


def _carried_distance(kernel: Kernel, producer: str, consumer: str) -> Optional[int]:
    """Smallest positive flow distance producer -> consumer, if any."""
    distances = [
        edge.distance
        for edge in kernel.ddg.out_edges(producer)
        if edge.dst == consumer and edge.kind == "flow" and edge.distance > 0
    ]
    return min(distances) if distances else None


def unroll(kernel: Kernel, factor: int) -> Kernel:
    """Unroll ``kernel``'s innermost loop by ``factor``.

    The innermost trip count must be divisible by the factor (no
    remainder loop is generated).
    """
    if factor < 1:
        raise UnrollError("unroll factor must be >= 1")
    if factor == 1:
        return kernel
    loop = kernel.loop
    inner = loop.inner
    if loop.n_iterations % factor != 0:
        raise UnrollError(
            f"trip count {loop.n_iterations} of {loop.name!r} is not "
            f"divisible by factor {factor}"
        )

    positions = {op.name: index for index, op in enumerate(loop.operations)}
    defs: Dict[str, str] = {
        op.dest: op.name for op in loop.operations if op.dest is not None
    }

    new_ops: List[Operation] = []
    new_refs: List[ArrayReference] = []
    extra_edges: List[DepEdge] = []

    for k in range(factor):
        for op in loop.operations:
            new_srcs: List[str] = []
            for src in op.srcs:
                producer = defs.get(src)
                if producer is None:
                    new_srcs.append(src)  # live-in: shared by all copies
                    continue
                carried = _carried_distance(kernel, producer, op.name)
                if carried is None or positions[producer] < positions[op.name]:
                    # Intra-iteration use: stay within this copy.
                    new_srcs.append(_copy_name(src, k))
                    continue
                # Loop-carried use of distance `carried` (in original
                # iterations): route to copy k-carried, possibly in an
                # earlier new iteration.
                delta = k - carried
                if delta >= 0:
                    new_srcs.append(_copy_name(src, delta))
                else:
                    new_dist = (-delta + factor - 1) // factor
                    source_copy = delta + new_dist * factor
                    new_srcs.append(_copy_name(src, source_copy))
                    extra_edges.append(
                        DepEdge(
                            _copy_name(producer, source_copy),
                            _copy_name(op.name, k),
                            "flow",
                            new_dist,
                        )
                    )
            ref_index = None
            if op.ref_index is not None:
                ref_index = len(new_refs)
                new_refs.append(
                    _shift_ref(loop.refs[op.ref_index], inner.var, k * inner.step)
                )
            new_ops.append(
                Operation(
                    name=_copy_name(op.name, k),
                    opclass=op.opclass,
                    dest=None if op.dest is None else _copy_name(op.dest, k),
                    srcs=tuple(new_srcs),
                    ref_index=ref_index,
                )
            )

    # Replicate explicit memory-ordering (and anti) edges per copy pair.
    for edge in kernel.ddg.edges():
        if edge.kind not in ("mem", "anti"):
            continue
        for k in range(factor):
            delta = k - edge.distance
            if delta >= 0:
                extra_edges.append(
                    DepEdge(
                        _copy_name(edge.src, delta),
                        _copy_name(edge.dst, k),
                        edge.kind,
                        0,
                    )
                )
            else:
                new_dist = (-delta + factor - 1) // factor
                source_copy = delta + new_dist * factor
                extra_edges.append(
                    DepEdge(
                        _copy_name(edge.src, source_copy),
                        _copy_name(edge.dst, k),
                        edge.kind,
                        new_dist,
                    )
                )

    new_inner = LoopDim(
        inner.var, inner.lower, inner.upper, inner.step * factor
    )
    new_loop = Loop(
        name=f"{loop.name}_x{factor}",
        dims=loop.dims[:-1] + (new_inner,),
        operations=tuple(new_ops),
        refs=tuple(new_refs),
    )
    # De-duplicate extra edges (mem replication can repeat pairs).
    unique = list({
        (e.src, e.dst, e.kind, e.distance): e for e in extra_edges
    }.values())
    return Kernel(loop=new_loop, ddg=build_ddg(new_loop, unique))
