"""Quick-look artifact export: npz/csv from any result set.

Every consumer of the experiment stack ends at the same place — a flat
list of per-cell record dictionaries (kernel, machine, scheduler,
threshold, cycle counts, memory counters, and the figures' normalized
columns).  This module turns that list into analysis-ready artifacts
without re-running anything:

* **csv** via :func:`repro.harness.io.records_to_csv` (spreadsheets,
  pandas);
* **npz** — one named numpy array per column, so a quick-look notebook
  is ``np.load(path)`` away from plotting.  Integer columns stay int64,
  missing values in numeric columns become NaN (promoting the column to
  float64), and everything else is stored as fixed-width unicode — no
  pickled objects, so archives load with ``allow_pickle=False``.

:func:`outcome_records` flattens a
:class:`~repro.harness.scenarios.ScenarioOutcome` (grid rows or figure
records) and the service's export endpoint, the ``repro export`` CLI
and the round-trip tests all share it.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..engine.result import RunResult
from ..harness.io import records_to_csv
from ..harness.scenarios import ScenarioOutcome

__all__ = [
    "EXPORT_FORMATS",
    "result_record",
    "outcome_records",
    "records_to_npz",
    "load_npz",
    "export_records",
    "export_outcome",
]

EXPORT_FORMATS = ("npz", "csv")


def result_record(
    result: RunResult, group: Optional[str] = None
) -> Dict[str, object]:
    """One cell's flat export row (simulation counters + schedule facts)."""
    record: Dict[str, object] = {}
    if group is not None:
        record["group"] = group
    record.update(result.simulation.as_dict())
    record["mii"] = result.schedule.mii
    record["stage_count"] = result.schedule.stage_count
    record["communications"] = result.schedule.n_communications
    return record


def outcome_records(outcome: ScenarioOutcome) -> List[Dict[str, object]]:
    """Flatten a scenario outcome into export rows, enumeration order.

    Figure outcomes already carry per-kernel records (with the
    ``norm_*`` columns the figures add); grid outcomes are flattened
    through :func:`result_record` with the group label attached.
    """
    if outcome.figure is not None:
        return [dict(record) for record in outcome.figure.records]
    return [
        result_record(result, group=label)
        for label, _threshold, _kernel, result in outcome.iter_rows()
    ]


def _column(values: List[object], key: str) -> np.ndarray:
    """One record column as a dense array, following the typing rule:
    all-int → int64; numeric with floats or missing values → float64
    (``None`` becomes NaN); anything else → fixed-width unicode."""
    numeric = all(
        value is None
        or (isinstance(value, (int, float)) and not isinstance(value, bool))
        for value in values
    )
    if numeric and any(value is not None for value in values):
        if all(isinstance(value, int) for value in values):
            return np.asarray(values, dtype=np.int64)
        return np.asarray(
            [math.nan if value is None else float(value) for value in values],
            dtype=np.float64,
        )
    return np.asarray(
        ["" if value is None else str(value) for value in values],
        dtype=np.str_,
    )


def records_to_npz(
    records: Sequence[Dict[str, object]], path: os.PathLike
) -> Path:
    """Write records as a compressed npz, one array per column."""
    if not records:
        raise ValueError("no records to export")
    path = Path(path)
    names: Dict[str, None] = {}
    for record in records:
        for key in record:
            names.setdefault(key, None)
    arrays = {
        key: _column([record.get(key) for record in records], key)
        for key in names
    }
    np.savez_compressed(path, **arrays)
    # np.savez appends .npz when the suffix is missing — report where
    # the bytes actually went.
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def load_npz(path: os.PathLike) -> List[Dict[str, object]]:
    """Read an exported npz back into record dictionaries."""
    with np.load(Path(path), allow_pickle=False) as archive:
        columns = {key: archive[key].tolist() for key in archive.files}
    if not columns:
        return []
    length = len(next(iter(columns.values())))
    return [
        {key: values[index] for key, values in columns.items()}
        for index in range(length)
    ]


def export_records(
    records: Sequence[Dict[str, object]], path: os.PathLike, format: str
) -> Path:
    """Write records in one of :data:`EXPORT_FORMATS`; returns the path."""
    if format == "npz":
        return records_to_npz(records, path)
    if format == "csv":
        return records_to_csv(records, path)
    raise ValueError(
        f"unknown export format {format!r}; choose from {EXPORT_FORMATS}"
    )


def export_outcome(
    outcome: ScenarioOutcome, path: os.PathLike, format: str
) -> Path:
    """Export a scenario outcome's rows as a quick-look artifact."""
    return export_records(outcome_records(outcome), path, format)
