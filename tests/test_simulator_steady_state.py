"""Steady-state memoization: equivalence with exact replay, detection
behaviour, and the iteration-count validation contract.

The load-bearing property is *bit-identity*: a memoized run must produce
exactly the same :meth:`SimulationResult.as_dict` — cycles, stalls and
every memory statistic — as ``exact=True`` full replay, for any kernel,
machine and ``n_times``.  Detection itself is best-effort (thrashing or
irregular kernels simply never memoize), but equivalence is not.
"""

import pytest

from repro.cme import SamplingCME
from repro.ir import LoopBuilder
from repro.machine import (
    BusConfig,
    four_cluster,
    heterogeneous,
    two_cluster,
    unified,
)
from repro.scheduler import BaselineScheduler, SchedulerConfig
from repro.simulator import LockstepSimulator, SteadyState, simulate
from repro.workloads import kernel_by_name, random_kernel
from repro.workloads.generator import GeneratorConfig


def _assert_equivalent(schedule, n_iterations=None, n_times=None):
    """Exact and memoized runs must agree bit for bit; returns the
    memoized simulator for steady-state introspection."""
    exact_sim = LockstepSimulator(
        schedule, n_iterations=n_iterations, n_times=n_times, exact=True
    )
    exact = exact_sim.run()
    memo_sim = LockstepSimulator(
        schedule, n_iterations=n_iterations, n_times=n_times
    )
    memo = memo_sim.run()
    assert memo.as_dict() == exact.as_dict()
    assert exact_sim.steady_state is None  # exact never memoizes
    # Aggregates outside SimulationResult are patched by replay too.
    assert memo_sim.memory.counters() == exact_sim.memory.counters()
    return memo_sim


def _schedule(kernel, machine):
    return BaselineScheduler().schedule(kernel, machine)


class TestSuiteKernelEquivalence:
    @pytest.mark.parametrize(
        "kernel_name", ["tomcatv", "swim", "hydro2d", "mgrid", "apsi"]
    )
    @pytest.mark.parametrize(
        "machine_factory", [unified, two_cluster, four_cluster, heterogeneous]
    )
    def test_multi_entry_kernels(self, kernel_name, machine_factory):
        kernel = kernel_by_name(kernel_name)
        sim = _assert_equivalent(_schedule(kernel, machine_factory()))
        # These stencil sweeps all settle: the win must actually exist.
        steady = sim.steady_state
        assert steady is not None
        assert steady.replayed_entries > 0
        assert (
            steady.simulated_entries + steady.replayed_entries
            == kernel.loop.n_times
        )

    def test_swim_needs_sub_line_phase(self):
        """swim's 328-byte row stride is not line-aligned; steady state
        is only reachable by matching entries whose cumulative shifts
        differ by whole lines — every 4th entry (4*328 = 41 lines)."""
        kernel = kernel_by_name("swim")
        sim = _assert_equivalent(_schedule(kernel, four_cluster()))
        assert sim.steady_state is not None
        assert sim.steady_state.period % 4 == 0

    def test_single_entry_kernels_never_memoize(self):
        for kernel_name in ("su2cor", "applu", "turb3d"):
            kernel = kernel_by_name(kernel_name)
            sim = _assert_equivalent(_schedule(kernel, two_cluster()))
            assert sim.steady_state is None


class TestNTimesSweep:
    @pytest.mark.parametrize("n_times", [1, 2, 3, 5, 8, 40])
    def test_override_equivalence(self, stencil, n_times):
        schedule = _schedule(stencil, two_cluster())
        sim = _assert_equivalent(schedule, n_times=n_times)
        if n_times == 1:
            assert sim.steady_state is None

    @pytest.mark.parametrize("n_iterations", [1, 4, 9])
    def test_iteration_override_equivalence(self, stencil, n_iterations):
        schedule = _schedule(stencil, two_cluster())
        _assert_equivalent(schedule, n_iterations=n_iterations, n_times=10)

    def test_replay_cycle_shorter_than_remaining(self, stencil):
        """Detection at entry k with period p replays (n-k) entries in
        whole cycles plus a partial one; totals must still match."""
        schedule = _schedule(stencil, two_cluster())
        for n_times in (11, 12, 13, 14):
            _assert_equivalent(schedule, n_times=n_times)


class TestRandomKernels:
    @pytest.mark.parametrize("seed", range(24))
    def test_random_kernel_equivalence(self, seed):
        kernel = random_kernel(seed)
        schedule = _schedule(kernel, two_cluster())
        _assert_equivalent(schedule)

    @pytest.mark.parametrize("seed", range(8))
    def test_conflict_heavy_random_kernels(self, seed):
        """Deliberate same-set conflict arrays on the small 4-cluster
        caches: harsh on the memoizer's shift normalization."""
        config = GeneratorConfig(
            conflict_probability=0.9, max_dims=2, min_extent=16
        )
        kernel = random_kernel(seed, config)
        schedule = _schedule(kernel, four_cluster())
        _assert_equivalent(schedule, n_times=12)


def _mixed_stride_kernel():
    """A[j][i] and B[2j][i]: per-entry address deltas differ between the
    two references, so no uniform shift aligns consecutive entries and
    detection can never fire."""
    b = LoopBuilder("mixed_stride")
    b.dim("j", 0, 12)
    b.dim("i", 0, 24)
    a = b.array("A", (16, 24))
    bb = b.array("B", (32, 24))
    va = b.load(a, [b.aff(j=1), b.aff(i=1)], name="ld_a")
    vb = b.load(bb, [b.aff(j=2), b.aff(i=1)], name="ld_b")
    t = b.fmul(va, vb, name="mul")
    b.store(a, [b.aff(j=1), b.aff(i=1)], t, name="st")
    return b.build()


def _thrash_kernel():
    """Two arrays a cache-size apart, walked with a large stride: every
    access conflicts in the direct-mapped cache and keeps missing."""
    b = LoopBuilder("thrash")
    b.dim("j", 0, 10)
    b.dim("i", 0, 32)
    a = b.array("A", (64, 64))
    bb = b.array("B", (64, 64), base=2048)
    va = b.load(a, [b.aff(j=1), b.aff(i=1)], name="ld_a")
    vb = b.load(bb, [b.aff(j=1), b.aff(i=1)], name="ld_b")
    t = b.fadd(va, vb, name="add")
    b.store(a, [b.aff(j=1), b.aff(i=1)], t, name="st")
    return b.build()


class TestNonConvergingKernels:
    def test_mixed_stride_never_detects(self):
        kernel = _mixed_stride_kernel()
        schedule = _schedule(kernel, two_cluster())
        sim = _assert_equivalent(schedule)
        assert sim.steady_state is None

    def test_cache_thrashing_still_equivalent(self):
        kernel = _thrash_kernel()
        schedule = _schedule(kernel, four_cluster())
        _assert_equivalent(schedule)


class TestPrefetchedSchedules:
    def test_threshold_zero_equivalence(self, sampling_cme):
        kernel = kernel_by_name("tomcatv")
        schedule = BaselineScheduler(
            SchedulerConfig(threshold=0.0), locality=sampling_cme
        ).schedule(kernel, two_cluster())
        _assert_equivalent(schedule)

    def test_bounded_buses_equivalence(self):
        kernel = kernel_by_name("hydro2d")
        machine = two_cluster(
            register_bus=BusConfig(count=1, latency=4),
            memory_bus=BusConfig(count=1, latency=4),
        )
        _assert_equivalent(_schedule(kernel, machine))

    def test_unbounded_buses_equivalence(self):
        kernel = kernel_by_name("apsi")
        machine = two_cluster(
            register_bus=BusConfig(count=None, latency=1),
            memory_bus=BusConfig(count=None, latency=1),
        )
        _assert_equivalent(_schedule(kernel, machine))


class TestValidation:
    """The falsy-zero fix: explicit 0 must not silently mean 'default'."""

    @pytest.mark.parametrize("value", [0, -1, -100])
    @pytest.mark.parametrize("field", ["n_iterations", "n_times"])
    def test_non_positive_rejected(self, saxpy, field, value):
        schedule = _schedule(saxpy, unified())
        with pytest.raises(ValueError, match=f"{field} must be >= 1"):
            LockstepSimulator(schedule, **{field: value})

    def test_zero_rejected_via_simulate(self, saxpy):
        schedule = _schedule(saxpy, unified())
        with pytest.raises(ValueError, match="n_times must be >= 1"):
            simulate(schedule, n_times=0)

    def test_none_still_defaults(self, saxpy):
        schedule = _schedule(saxpy, unified())
        sim = LockstepSimulator(schedule, n_iterations=None, n_times=None)
        assert sim.n_iterations == saxpy.loop.n_iterations
        assert sim.n_times == saxpy.loop.n_times

    def test_non_integer_rejected(self, saxpy):
        schedule = _schedule(saxpy, unified())
        with pytest.raises(ValueError, match="must be an int"):
            LockstepSimulator(schedule, n_iterations=2.5)

    def test_steady_state_record_shape(self, stencil):
        schedule = _schedule(stencil, four_cluster())
        sim = LockstepSimulator(schedule)
        sim.run()
        steady = sim.steady_state
        if steady is not None:
            assert isinstance(steady, SteadyState)
            assert steady.period >= 1
            assert steady.detected_at == steady.simulated_entries
