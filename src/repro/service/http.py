"""Minimal HTTP/1.1 layer over asyncio streams.

Just enough HTTP for the experiment service and its stdlib clients, so
tier-1 stays zero-dependency: request line + headers + ``Content-Length``
bodies on the way in; ``Connection: close`` responses (fixed-length JSON
or close-delimited NDJSON streams) on the way out.  One request per
connection — the service's traffic is a handful of API calls and
long-lived event streams, not a static-file benchmark, and the close
semantics keep both the parser and the ``urllib`` client trivial.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from http import HTTPStatus
from typing import Dict, List, Optional
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "send_json",
    "send_bytes",
    "start_ndjson_stream",
    "send_ndjson_line",
]

#: Upper bound on request bodies (a scenario spec is a few KB; anything
#: approaching this is not a job submission).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Upper bound on the header block, total.
MAX_HEADER_BYTES = 64 * 1024


class HttpError(Exception):
    """A request the server answers with a non-200 JSON error body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    target: str
    path: str
    query: Dict[str, List[str]] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def query_value(self, key: str, default: Optional[str] = None) -> Optional[str]:
        values = self.query.get(key)
        return values[0] if values else default

    def json(self) -> object:
        """The body parsed as JSON (400 on syntax errors, not 500)."""
        if not self.body:
            raise HttpError(400, "request body must be JSON, got nothing")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


async def _read_line(reader) -> bytes:
    try:
        line = await reader.readline()
    except ValueError:
        # StreamReader's limit tripped: an over-long line.
        raise HttpError(431, "header line too long")
    if len(line) > MAX_HEADER_BYTES:
        raise HttpError(431, "header line too long")
    return line


async def read_request(reader) -> Optional[HttpRequest]:
    """Parse one request from the stream; ``None`` on a clean EOF.

    Malformed input raises :class:`HttpError` (the caller answers with
    its status and closes) — a broken peer must never take the service
    down.
    """
    request_line = await _read_line(reader)
    if not request_line or request_line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, version = (
            request_line.decode("ascii").strip().split(" ")
        )
    except (UnicodeDecodeError, ValueError):
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(505, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    total_header_bytes = 0
    while True:
        line = await _read_line(reader)
        if not line:
            raise HttpError(400, "connection closed inside headers")
        if line in (b"\r\n", b"\n"):
            break
        total_header_bytes += len(line)
        if total_header_bytes > MAX_HEADER_BYTES:
            raise HttpError(431, "header block too large")
        try:
            name, _sep, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise HttpError(400, "malformed header line")
        if not _sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_text!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception:
                raise HttpError(400, "connection closed inside body")
    elif headers.get("transfer-encoding"):
        raise HttpError(
            501, "chunked request bodies are not supported; "
            "send Content-Length"
        )

    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def _head(
    status: int, content_type: str, content_length: Optional[int]
) -> bytes:
    phrase = HTTPStatus(status).phrase
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


async def send_bytes(
    writer, status: int, body: bytes, content_type: str
) -> None:
    """One complete fixed-length response."""
    writer.write(_head(status, content_type, len(body)))
    writer.write(body)
    await writer.drain()


async def send_json(writer, status: int, payload: object) -> None:
    """One complete JSON response (sorted keys: byte-stable output)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    await send_bytes(writer, status, body, "application/json")


async def start_ndjson_stream(writer) -> None:
    """Open a close-delimited NDJSON stream (no Content-Length)."""
    writer.write(_head(200, "application/x-ndjson", None))
    await writer.drain()


async def send_ndjson_line(writer, payload: object) -> None:
    """One event line on an open NDJSON stream."""
    writer.write(json.dumps(payload, sort_keys=True).encode("utf-8"))
    writer.write(b"\n")
    await writer.drain()
