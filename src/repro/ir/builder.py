"""A small DSL for writing loop kernels.

The SPECfp95 loops the paper schedules were produced by the ICTINEO
compiler; here kernels are written directly::

    b = LoopBuilder("saxpy")
    i = b.dim("i", 0, 1000)
    x = b.array("X", (1000,))
    y = b.array("Y", (1000,))
    xi = b.load(x, [b.aff(i=1)])
    yi = b.load(y, [b.aff(i=1)])
    s = b.fmul(xi, b.fconst("alpha"))
    t = b.fadd(s, yi)
    b.store(y, [b.aff(i=1)], t)
    loop = b.build()

``build()`` returns a :class:`~repro.ir.loop.Loop` together with its
dependence graph, wrapped in a :class:`Kernel`.

Loop-carried recurrences are expressed with :meth:`LoopBuilder.prev`::

    acc = b.fadd(b.prev_value("acc", distance=1), xi, dest="acc")

which makes the ``fadd`` consume its own result from ``distance``
iterations earlier.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .ddg import DepEdge, DependenceGraph, build_ddg
from .loop import Loop, LoopDim
from .operations import OpClass, Operation
from .references import AffineExpr, Array, ArrayReference

__all__ = ["Value", "Kernel", "LoopBuilder"]


@dataclass(frozen=True)
class Value:
    """A register value produced by an operation (or a live-in constant)."""

    reg: str
    producer: Optional[str] = None  # op name; None for live-ins


@dataclass
class Kernel:
    """A loop plus its dependence graph — the scheduler's input."""

    loop: Loop
    ddg: DependenceGraph

    @property
    def name(self) -> str:
        return self.loop.name


class LoopBuilder:
    """Incrementally constructs a :class:`Kernel`.

    All ``emit``-style methods return a :class:`Value` for the produced
    register (stores return ``None``).  Operation and register names are
    generated automatically but can be overridden via ``name``/``dest``
    keyword arguments.
    """

    def __init__(self, name: str):
        self.name = name
        self._dims: List[LoopDim] = []
        self._ops: List[Operation] = []
        self._refs: List[ArrayReference] = []
        self._arrays: Dict[str, Array] = {}
        self._extra_edges: List[DepEdge] = []
        self._counters = itertools.count(1)
        self._next_base = 0
        self._pending_prev: Dict[str, List[Tuple[str, int]]] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def dim(self, var: str, lower: int, upper: int, step: int = 1) -> str:
        """Add a loop dimension (call outermost-first); returns the var name."""
        if any(d.var == var for d in self._dims):
            raise ValueError(f"duplicate loop variable {var!r}")
        self._dims.append(LoopDim(var, lower, upper, step))
        return var

    def array(
        self,
        name: str,
        shape: Sequence[int],
        element_size: int = 8,
        base: Optional[int] = None,
        align: int = 64,
    ) -> Array:
        """Declare an array; bases are packed sequentially unless given.

        ``base=None`` lays the array right after the previously declared
        one (aligned to ``align`` bytes).  Passing an explicit ``base``
        creates deliberate placements — e.g. the multiple-of-cache-size
        distance that produces the ping-pong conflicts of Section 3.
        """
        if name in self._arrays:
            raise ValueError(f"duplicate array {name!r}")
        if base is None:
            base = self._next_base
        arr = Array(name, tuple(shape), element_size, base)
        self._arrays[name] = arr
        end = arr.base + arr.size_bytes
        self._next_base = max(self._next_base, (end + align - 1) // align * align)
        return arr

    def aff(self, constant: int = 0, **coeffs: int) -> AffineExpr:
        """Shorthand for :meth:`AffineExpr.of`."""
        return AffineExpr.of(constant, **coeffs)

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def live_in(self, reg: str) -> Value:
        """A loop-invariant value defined before the loop (no producer)."""
        return Value(reg=reg, producer=None)

    fconst = live_in  # loop-invariant scalar: same scheduling behaviour

    def prev(self, value: Value, distance: int = 1) -> Value:
        """Use ``value`` as produced ``distance`` iterations earlier.

        The returned value carries the same register; the loop-carried
        flow edge is recorded when the consumer is emitted.
        """
        if value.producer is None:
            return value  # live-ins are iteration-invariant
        if distance < 1:
            raise ValueError("loop-carried distance must be >= 1")
        marker = f"__prev{distance}__{value.reg}"
        self._pending_prev.setdefault(marker, []).append(
            (value.producer, distance)
        )
        return Value(reg=marker, producer=value.producer)

    def prev_value(self, reg: str, distance: int = 1) -> Value:
        """Forward reference to a register defined later in the body.

        Used for recurrences whose consumer is emitted before the
        producer (``acc = acc + x``): the edge is resolved at ``build()``
        time against the operation that defines ``reg``.
        """
        if distance < 1:
            raise ValueError("loop-carried distance must be >= 1")
        marker = f"__fwd{distance}__{reg}"
        return Value(reg=marker, producer=None)

    # ------------------------------------------------------------------
    # Operation emission
    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        return f"{prefix}{next(self._counters)}"

    def _emit(
        self,
        opclass: OpClass,
        srcs: Sequence[Value],
        dest: Optional[str],
        name: Optional[str],
        ref: Optional[ArrayReference] = None,
    ) -> Optional[Value]:
        op_name = name or self._fresh(opclass.value)
        ref_index = None
        if ref is not None:
            ref_index = len(self._refs)
            self._refs.append(ref)
        if opclass.writes_register and dest is None:
            dest = f"v_{op_name}"
        operation = Operation(
            name=op_name,
            opclass=opclass,
            dest=dest,
            srcs=tuple(v.reg for v in srcs),
            ref_index=ref_index,
        )
        self._ops.append(operation)
        if dest is None:
            return None
        return Value(reg=dest, producer=op_name)

    def load(
        self,
        array: Array,
        subscripts: Sequence[AffineExpr],
        name: Optional[str] = None,
        dest: Optional[str] = None,
    ) -> Value:
        """Emit a load of ``array[subscripts]``."""
        ref = ArrayReference(array, tuple(subscripts), is_store=False)
        value = self._emit(OpClass.LOAD, [], dest, name, ref)
        assert value is not None
        return value

    def store(
        self,
        array: Array,
        subscripts: Sequence[AffineExpr],
        value: Value,
        name: Optional[str] = None,
    ) -> None:
        """Emit a store of ``value`` into ``array[subscripts]``."""
        ref = ArrayReference(array, tuple(subscripts), is_store=True)
        self._emit(OpClass.STORE, [value], None, name, ref)

    def _binary(
        self,
        opclass: OpClass,
        a: Value,
        b: Value,
        name: Optional[str],
        dest: Optional[str],
    ) -> Value:
        value = self._emit(opclass, [a, b], dest, name)
        assert value is not None
        return value

    def iadd(self, a: Value, b: Value, name=None, dest=None) -> Value:
        return self._binary(OpClass.IADD, a, b, name, dest)

    def isub(self, a: Value, b: Value, name=None, dest=None) -> Value:
        return self._binary(OpClass.ISUB, a, b, name, dest)

    def imul(self, a: Value, b: Value, name=None, dest=None) -> Value:
        return self._binary(OpClass.IMUL, a, b, name, dest)

    def fadd(self, a: Value, b: Value, name=None, dest=None) -> Value:
        return self._binary(OpClass.FADD, a, b, name, dest)

    def fsub(self, a: Value, b: Value, name=None, dest=None) -> Value:
        return self._binary(OpClass.FSUB, a, b, name, dest)

    def fmul(self, a: Value, b: Value, name=None, dest=None) -> Value:
        return self._binary(OpClass.FMUL, a, b, name, dest)

    def fdiv(self, a: Value, b: Value, name=None, dest=None) -> Value:
        return self._binary(OpClass.FDIV, a, b, name, dest)

    def fneg(self, a: Value, name=None, dest=None) -> Value:
        value = self._emit(OpClass.FNEG, [a], dest, name)
        assert value is not None
        return value

    # ------------------------------------------------------------------
    # Explicit dependences
    # ------------------------------------------------------------------
    def mem_dep(self, src_op: str, dst_op: str, distance: int = 0) -> None:
        """Add an explicit memory-ordering edge between two operations."""
        self._extra_edges.append(DepEdge(src_op, dst_op, "mem", distance))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self) -> Kernel:
        """Validate, resolve loop-carried markers, return the kernel."""
        if not self._dims:
            raise ValueError(f"kernel {self.name!r} has no loop dimensions")
        ops, carried = self._resolve_markers()
        loop = Loop(
            name=self.name,
            dims=tuple(self._dims),
            operations=tuple(ops),
            refs=tuple(self._refs),
        )
        ddg = build_ddg(loop, self._extra_edges + carried)
        return Kernel(loop=loop, ddg=ddg)

    def _resolve_markers(self) -> Tuple[List[Operation], List[DepEdge]]:
        """Replace ``__prev``/``__fwd`` source markers with real registers.

        Returns the rewritten operation list and the loop-carried flow
        edges the markers encoded.
        """
        defs: Dict[str, str] = {}
        for op in self._ops:
            if op.dest is not None:
                defs[op.dest] = op.name
        rewritten: List[Operation] = []
        carried: List[DepEdge] = []
        for op in self._ops:
            new_srcs: List[str] = []
            for src in op.srcs:
                resolved, edge = self._resolve_one(src, op.name, defs)
                new_srcs.append(resolved)
                if edge is not None:
                    carried.append(edge)
            if tuple(new_srcs) != op.srcs:
                op = Operation(
                    name=op.name,
                    opclass=op.opclass,
                    dest=op.dest,
                    srcs=tuple(new_srcs),
                    ref_index=op.ref_index,
                )
            rewritten.append(op)
        return rewritten, carried

    def _resolve_one(
        self, src: str, consumer: str, defs: Dict[str, str]
    ) -> Tuple[str, Optional[DepEdge]]:
        if src.startswith("__prev"):
            head, reg = src.split("__", 2)[1:]
            distance = int(head[len("prev"):])
            producers = self._pending_prev.get(src, [])
            producer = producers[0][0] if producers else defs.get(reg)
            if producer is None:
                raise ValueError(f"unresolved prev marker {src!r}")
            return reg, DepEdge(producer, consumer, "flow", distance)
        if src.startswith("__fwd"):
            head, reg = src.split("__", 2)[1:]
            distance = int(head[len("fwd"):])
            producer = defs.get(reg)
            if producer is None:
                raise ValueError(
                    f"prev_value({reg!r}) never defined in kernel {self.name!r}"
                )
            return reg, DepEdge(producer, consumer, "flow", distance)
        return src, None
