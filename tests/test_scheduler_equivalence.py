"""Scheduler equivalence: incremental vs from-scratch CME analyzers.

Every scenario/figure cell scheduled with the incremental engine must
produce a byte-identical schedule — same II, same placements (clusters,
times, assumed latencies), same communications — as the from-scratch
sampling analyzer.  This is the property that lets the engine swap ride
under the golden figures without regenerating any recording.

Figure cells use the same reduced grids as the golden-regression layer
(full fig5/fig6 sweeps belong to the benchmark suite); grid scenarios
are covered exhaustively from the registry.
"""

import pytest

from repro.cme import IncrementalCME, SamplingCME
from repro.engine.stages import make_scheduler
from repro.harness.grid import machine_key
from repro.harness.scenarios import all_scenarios
from repro.machine.config import BusConfig
from repro.machine.presets import four_cluster, two_cluster, unified
from repro.workloads.suite import spec_suite

MAX_POINTS = 512


def _cells_from_grid_scenarios():
    """Every registered grid-scenario cell that runs the sampled CME,
    deduplicated on what scheduling actually reads (the steady-state
    mode only affects simulation)."""
    seen = set()
    for scenario in all_scenarios():
        if scenario.is_figure or scenario.locality.kind != "sampling":
            continue
        kernels = scenario.build_kernels()
        for group in scenario.groups:
            machine = group.machine.build()
            for threshold in scenario.thresholds:
                for kernel in kernels:
                    key = (
                        kernel.name,
                        machine_key(machine),
                        group.scheduler,
                        threshold,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    yield (
                        f"{scenario.name}:{group.label}",
                        kernel,
                        machine,
                        group.scheduler,
                        threshold,
                    )


def _cells_from_figures():
    """The golden-regression figure panels (reduced grids).

    * fig6-smoke: 2-cluster, NMB=1, LMB=1, both schedulers, all four
      thresholds, plus the unified normalization reference.
    * fig5 reduced: 4-cluster, unbounded 1-cycle buses, both schedulers
      at the extreme thresholds.
    """
    kernels = spec_suite()
    fig6_machine = two_cluster(
        register_bus=BusConfig(count=2, latency=1),
        memory_bus=BusConfig(count=1, latency=1),
    )
    fig5_machine = four_cluster(
        register_bus=BusConfig(count=None, latency=1),
        memory_bus=BusConfig(count=None, latency=1),
    )
    reference = unified(memory_bus=BusConfig(count=1, latency=1))
    for kernel in kernels:
        for threshold in (1.0, 0.75, 0.25, 0.0):
            yield "fig6:unified", kernel, reference, "baseline", threshold
            for scheduler in ("baseline", "rmca"):
                yield (
                    "fig6:NMB=1,LMB=1",
                    kernel,
                    fig6_machine,
                    scheduler,
                    threshold,
                )
        for threshold in (1.0, 0.0):
            for scheduler in ("baseline", "rmca"):
                yield (
                    "fig5:LRB=1,LMB=1",
                    kernel,
                    fig5_machine,
                    scheduler,
                    threshold,
                )


def _canonical(schedule):
    """Everything a schedule decides, in a directly comparable shape."""
    return (
        schedule.ii,
        schedule.mii,
        schedule.res_mii,
        schedule.rec_mii,
        sorted(schedule.placements.items()),
        list(schedule.communications),
    )


@pytest.fixture(scope="module")
def analyzers():
    """One warm analyzer of each engine, shared across all cells —
    exactly how a grid session shares them."""
    return (
        SamplingCME(max_points=MAX_POINTS),
        IncrementalCME(max_points=MAX_POINTS),
    )


def _assert_cells_equivalent(cells, analyzers):
    reference_cme, incremental_cme = analyzers
    checked = 0
    for label, kernel, machine, scheduler, threshold in cells:
        reference = make_scheduler(scheduler, threshold, reference_cme)
        incremental = make_scheduler(scheduler, threshold, incremental_cme)
        want = reference.schedule(kernel, machine)
        got = incremental.schedule(kernel, machine)
        assert _canonical(got) == _canonical(want), (
            f"schedule diverged for {label} {kernel.name} "
            f"{scheduler} thr={threshold}"
        )
        checked += 1
    assert checked > 0


def test_grid_scenario_cells_schedule_identically(analyzers):
    _assert_cells_equivalent(_cells_from_grid_scenarios(), analyzers)


def test_figure_panel_cells_schedule_identically(analyzers):
    _assert_cells_equivalent(_cells_from_figures(), analyzers)


def test_batched_ranking_fires_on_multicluster_memory_kernels(analyzers):
    """The equivalence above must actually compare the batched path:
    scheduling a clustered RMCA cell consumes probe_clusters."""
    _, incremental_cme = analyzers
    before = incremental_cme.telemetry()["batched_calls"]
    engine = make_scheduler("rmca", 0.25, incremental_cme)
    engine.schedule(spec_suite()[0], two_cluster())
    assert incremental_cme.telemetry()["batched_calls"] > before
