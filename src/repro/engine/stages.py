"""The five stages of the cell pipeline.

Each stage is a small object with one job, reading its typed inputs
from — and writing its product back to — the :class:`CellContext` that
flows through the pipeline:

=========  ==========================  ==========================
stage      consumes                    produces
=========  ==========================  ==========================
build      request (kernel/machine)    resolved ``Kernel`` + machine
analyze    request.locality            the locality analyzer
schedule   kernel, machine, analyzer   the modulo ``Schedule``
simulate   schedule, sim overrides     the ``SimulationResult``
measure    everything above            the final ``RunResult``
=========  ==========================  ==========================

Every stage returns a statistics mapping; the pipeline wraps it with
wall-clock timing into a :class:`~repro.engine.pipeline.StageRecord`, so
any cell execution can report where its time went.

The analyze/schedule/simulate stage semantics defined here are the
contract for plan-based execution too: the task helpers in
:mod:`repro.engine.plan` (``run_analyze_task``/``run_schedule_task``/
``run_simulate_batch``) replicate each stage's store protocol and
simulator construction exactly, which is what makes the planned path
bit-identical to this per-cell reference.  Change a stage here and the
corresponding helper must follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Union

from ..cme.locality import LocalityAnalyzer, default_analyzer, locality_fingerprint
from ..cme.trace import loop_fingerprint
from ..ir.builder import Kernel
from ..machine.config import MachineConfig
from ..scheduler.base import SchedulerConfig
from ..scheduler.baseline import BaselineScheduler
from ..scheduler.result import Schedule
from ..scheduler.rmca import RMCAScheduler
from ..simulator import DEFAULT_SIM_ENGINE, SIM_ENGINES, validate_sim_engine
from ..simulator.stats import SimulationResult
from ..steady import resolve_steady_mode
from ..workloads.suite import kernel_by_name
from .result import RunResult
from .stagestore import StageStore, kernel_fingerprint, machine_key

__all__ = [
    "SCHEDULER_NAMES",
    "CellRequest",
    "CellContext",
    "Stage",
    "BuildStage",
    "AnalyzeStage",
    "ScheduleStage",
    "SimulateStage",
    "MeasureStage",
    "make_scheduler",
]

SCHEDULER_NAMES = ("baseline", "rmca")


def make_scheduler(
    name: str,
    threshold: float = 1.0,
    locality: Optional[LocalityAnalyzer] = None,
):
    """Instantiate a scheduler by its paper name (``baseline``/``rmca``).

    Both schedulers receive the locality analyzer: the figures apply the
    miss-threshold binding-prefetch step to Baseline too (its bars also
    sweep the threshold); only *cluster selection* differs.
    """
    if name not in SCHEDULER_NAMES:
        raise KeyError(
            f"unknown scheduler {name!r}; choose from {SCHEDULER_NAMES}"
        )
    analyzer = locality if locality is not None else default_analyzer()
    config = SchedulerConfig(threshold=threshold)
    if name == "rmca":
        return RMCAScheduler(analyzer, config)
    return BaselineScheduler(config=config, locality=analyzer)


@dataclass
class CellRequest:
    """Everything needed to execute one experiment cell.

    ``kernel`` may be a live :class:`Kernel` or a name, resolved against
    ``kernels`` (an optional registry for non-suite kernels) and then the
    SPECfp95 suite.  ``steady`` selects the simulator's steady-state
    detectors (:data:`repro.steady.STEADY_MODES`; ``None`` means
    ``auto``); ``exact=True`` forces them all off.  Results are
    bit-identical across every selection.
    """

    kernel: Union[Kernel, str]
    machine: MachineConfig
    scheduler: str
    threshold: float = 1.0
    locality: Optional[LocalityAnalyzer] = None
    n_iterations: Optional[int] = None
    n_times: Optional[int] = None
    exact: bool = False
    steady: Optional[str] = None
    #: Simulate engine (:data:`repro.simulator.SIM_ENGINES`; ``None``
    #: means the vectorized default).  Results are bit-identical across
    #: engines — the equivalence suite proves it.
    sim: Optional[str] = None
    #: Optional :class:`repro.simulator.WarmStateStore`: lets cells whose
    #: schedules land byte-identical share the detector-confirmed
    #: post-warm-up memory state instead of re-simulating it.  ``None``
    #: (and ``exact=True``/``steady="off"``) runs every warm-up cold.
    warm_store: Optional[object] = None
    #: Optional :class:`repro.engine.stagestore.StageStore`: content-
    #: addressed analyze/schedule/simulate results shared across cells,
    #: runs and scenarios.  Each stage consults its store layer before
    #: computing and publishes after; ``None`` computes everything.
    #: Results are bit-identical either way — the keys cover everything
    #: each stage reads.
    stage_store: Optional[StageStore] = None
    kernels: Mapping[str, Kernel] = field(default_factory=dict)


@dataclass
class CellContext:
    """Mutable state flowing through the pipeline stages."""

    request: CellRequest
    kernel: Optional[Kernel] = None
    machine: Optional[MachineConfig] = None
    locality: Optional[LocalityAnalyzer] = None
    engine: Optional[object] = None
    schedule: Optional[Schedule] = None
    simulation: Optional[SimulationResult] = None
    result: Optional[RunResult] = None


class Stage:
    """One pipeline step: ``run`` mutates the context, returns stats."""

    name: str = "stage"

    def run(self, ctx: CellContext) -> Dict[str, object]:
        raise NotImplementedError


class BuildStage(Stage):
    """Resolve the kernel (object or registry/suite name) and machine."""

    name = "build"

    def run(self, ctx: CellContext) -> Dict[str, object]:
        request = ctx.request
        kernel = request.kernel
        if isinstance(kernel, str):
            registered = request.kernels.get(kernel)
            kernel = registered if registered is not None else kernel_by_name(kernel)
        ctx.kernel = kernel
        ctx.machine = request.machine
        stats = kernel.loop.stats()
        return {
            "kernel": kernel.name,
            "machine": request.machine.name,
            "operations": stats["operations"],
            "memory_operations": stats["memory_operations"],
            "niter": stats["niter"],
            "ntimes": stats["ntimes"],
        }


class AnalyzeStage(Stage):
    """Attach the locality analyzer every scheduling decision reads.

    With a stage store, the analyzer's address trace for this kernel —
    the analyze product everything downstream samples — is adopted from
    the store when some earlier cell (any machine, scheduler, threshold,
    run or scenario) already walked the iteration space, and published
    into it otherwise.  Only analyzers with a content-addressed
    :class:`~repro.cme.trace.TraceStore` participate; the others carry
    no shareable analyze product.
    """

    name = "analyze"

    def run(self, ctx: CellContext) -> Dict[str, object]:
        request = ctx.request
        locality = request.locality
        ctx.locality = locality if locality is not None else default_analyzer()
        stats: Dict[str, object] = {
            "analyzer": locality_fingerprint(ctx.locality)
        }
        store = request.stage_store
        traces = getattr(ctx.locality, "traces", None)
        max_points = getattr(ctx.locality, "max_points", None)
        if store is None or traces is None or max_points is None:
            return stats
        loop_fp = loop_fingerprint(ctx.kernel.loop)
        key = StageStore.analyze_key(loop_fp, str(stats["analyzer"]))
        local = traces.peek_address_trace(loop_fp, max_points)
        if local is not None:
            # The analyzer walked (or adopted) this trace already —
            # make sure the store has it for other cells and processes.
            store.publish("analyze", key, local)
            stats["store_hit"] = False
            return stats
        hit = store.lookup("analyze", key)
        if hit is not None:
            traces.install_address_trace(hit)
            stats["store_hit"] = True
            return stats
        store.store("analyze", key, traces.address_trace(ctx.kernel.loop, max_points))
        stats["store_hit"] = False
        return stats


class ScheduleStage(Stage):
    """Modulo-schedule the kernel with the requested scheduler.

    When the locality analyzer exposes CME telemetry (the incremental
    engine does), the stage records the probe/memo/replay activity the
    scheduling run caused — ``cme_*`` deltas in the stage stats — so
    benchmarks and CI can assert the batched path is actually exercised.
    """

    name = "schedule"

    def run(self, ctx: CellContext) -> Dict[str, object]:
        request = ctx.request
        store = request.stage_store
        store_key: Optional[str] = None
        if store is not None:
            store_key = StageStore.schedule_key(
                kernel_name=ctx.kernel.name,
                kernel_fp=kernel_fingerprint(ctx.kernel),
                machine=machine_key(ctx.machine),
                scheduler=request.scheduler,
                threshold=request.threshold,
                locality_fp=locality_fingerprint(ctx.locality),
            )
            hit = store.lookup("schedule", store_key)
            if hit is not None:
                # Scheduling is deterministic per key (the equivalence
                # suite proves it), so the stored schedule IS this
                # cell's schedule — labels included.
                ctx.schedule = hit
                return {
                    "scheduler": request.scheduler,
                    "threshold": request.threshold,
                    "ii": hit.ii,
                    "mii": hit.mii,
                    "stage_count": hit.stage_count,
                    "communications": hit.n_communications,
                    "store_hit": True,
                }
        ctx.engine = make_scheduler(
            request.scheduler, request.threshold, ctx.locality
        )
        telemetry = getattr(ctx.locality, "telemetry", None)
        before = telemetry() if callable(telemetry) else None
        ctx.schedule = ctx.engine.schedule(ctx.kernel, ctx.machine)
        stats: Dict[str, object] = {
            "scheduler": request.scheduler,
            "threshold": request.threshold,
            "ii": ctx.schedule.ii,
            "mii": ctx.schedule.mii,
            "stage_count": ctx.schedule.stage_count,
            "communications": ctx.schedule.n_communications,
        }
        if before is not None:
            after = telemetry()
            for key, value in after.items():
                stats[f"cme_{key}"] = value - before.get(key, 0)
        if store is not None:
            store.store("schedule", store_key, ctx.schedule)
            stats["store_hit"] = False
        return stats


class SimulateStage(Stage):
    """Execute the schedule on the distributed-memory timing model.

    ``request.sim`` selects the engine (vectorized by default); the
    stage records which engine actually ran plus its batching telemetry
    as ``sim_*`` statistics, so benchmarks and CI can assert the
    batched path is exercised (and spot scalar fallbacks).
    """

    name = "simulate"

    def run(self, ctx: CellContext) -> Dict[str, object]:
        request = ctx.request
        sim = validate_sim_engine(
            request.sim if request.sim is not None else DEFAULT_SIM_ENGINE
        )
        store = request.stage_store
        store_key: Optional[str] = None
        if store is not None and not request.exact:
            # Keyed on the schedule *content* (scheduler name/threshold
            # excluded — the warm-state key family): cells whose
            # schedules land byte-identical share one simulation.
            # ``exact=True`` means "actually simulate", so it bypasses
            # the store the way it bypasses the steady-state detectors.
            store_key = StageStore.simulate_key(
                schedule_fp=ctx.schedule.fingerprint(),
                sim=sim,
                steady=resolve_steady_mode(request.steady, request.exact),
                n_iterations=request.n_iterations,
                n_times=request.n_times,
            )
            hit = store.lookup("simulate", store_key)
            if hit is not None:
                # The stored result came from some schedule with this
                # content, possibly under a different scheduler name or
                # threshold — the timing numbers are identical, the
                # labels must be this cell's.
                ctx.simulation = replace(
                    hit,
                    kernel=ctx.kernel.name,
                    machine=ctx.machine.name,
                    scheduler=request.scheduler,
                    threshold=request.threshold,
                )
                return {
                    "exact": request.exact,
                    "steady_mode": resolve_steady_mode(
                        request.steady, request.exact
                    ),
                    "entries": ctx.simulation.n_times,
                    "sim_requested": sim,
                    "store_hit": True,
                }
        simulator = SIM_ENGINES[sim](
            ctx.schedule,
            n_iterations=request.n_iterations,
            n_times=request.n_times,
            exact=request.exact,
            steady=request.steady,
            warm_store=request.warm_store,
        )
        ctx.simulation = simulator.run()
        steady = simulator.steady_state
        report = simulator.steady_report
        stats: Dict[str, object] = {
            "exact": request.exact,
            "steady_mode": simulator.steady_mode,
            "entries": ctx.simulation.n_times,
            "entries_simulated": (
                steady.simulated_entries if steady else ctx.simulation.n_times
            ),
            "entries_replayed": steady.replayed_entries if steady else 0,
            "steady_state_period": steady.period if steady else None,
            "iterations_replayed": report.iterations_replayed if report else 0,
            "iteration_detections": len(report.iterations) if report else 0,
            "iteration_period": report.iteration_period if report else None,
            "sim_requested": sim,
        }
        vector_stats = getattr(simulator, "vector_stats", None)
        if vector_stats is None:
            stats["sim_engine"] = "scalar"
        else:
            for key, value in vector_stats.items():
                stats[f"sim_{key}"] = value
        for key, value in simulator.warm_stats.items():
            stats[f"sim_warm_{key}"] = value
        if store_key is not None:
            store.store("simulate", store_key, ctx.simulation)
            stats["store_hit"] = False
        return stats


class MeasureStage(Stage):
    """Assemble the cell's :class:`RunResult`."""

    name = "measure"

    def run(self, ctx: CellContext) -> Dict[str, object]:
        ctx.result = RunResult(
            kernel=ctx.kernel.name,
            machine=ctx.machine.name,
            scheduler=ctx.request.scheduler,
            threshold=ctx.request.threshold,
            schedule=ctx.schedule,
            simulation=ctx.simulation,
        )
        return {
            "total_cycles": ctx.result.total_cycles,
            "compute_cycles": ctx.result.compute_cycles,
            "stall_cycles": ctx.result.stall_cycles,
            "local_miss_ratio": ctx.simulation.memory.local_miss_ratio,
        }
