"""Modulo variable expansion (MVE) and physical register assignment.

A modulo-scheduled value whose lifetime exceeds the II would be
overwritten by its own next-iteration instance before its last use.
Rotating register files solve this in hardware; machines without them
(like the multiVLIWprocessor, whose ISA has plain register fields) use
**modulo variable expansion** [Lam 88]: the kernel is unrolled
``ceil(max_lifetime / II)`` times and each unrolled copy writes a
different physical register.

This module computes, per cluster:

* each value's MVE degree (how many simultaneous instances exist),
* the kernel unroll factor (the maximum degree, over all values in any
  cluster — the copies must stay in lockstep),
* a physical register assignment for every (value, copy) pair, verified
  against the cluster's register-file size.

It is the code-generation step that turns a validated
:class:`~repro.scheduler.result.Schedule` into something the Figure 2
ISA could actually execute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .lifetimes import ValueLifetime, _lifetimes
from .result import Schedule

__all__ = ["RegisterAssignment", "AllocationError", "allocate_registers"]


class AllocationError(RuntimeError):
    """Raised when a cluster's register file cannot hold the kernel."""


@dataclass
class RegisterAssignment:
    """MVE result: unroll factor plus per-(value, copy) physical registers."""

    schedule: Schedule
    unroll_factor: int
    #: (producer op, cluster, copy index) -> physical register number.
    registers: Dict[Tuple[str, int, int], int] = field(default_factory=dict)
    #: Per-cluster count of physical registers used.
    used_per_cluster: Dict[int, int] = field(default_factory=dict)

    def register_of(self, producer: str, cluster: int, copy: int) -> int:
        return self.registers[(producer, cluster, copy % self.unroll_factor)]

    def degree_of(self, producer: str, cluster: int) -> int:
        """Number of distinct physical registers backing one value."""
        return len(
            {
                reg
                for (op, cl, _copy), reg in self.registers.items()
                if op == producer and cl == cluster
            }
        )

    def validate(self) -> None:
        """No two overlapping (value, copy) instances share a register."""
        ii = self.schedule.ii
        factor = self.unroll_factor
        span = ii * factor
        occupancy: Dict[Tuple[int, int, int], Tuple[str, int]] = {}
        for lifetime in _lifetimes(self.schedule):
            degree = _degree(lifetime, ii)
            for copy in range(factor):
                key = (lifetime.producer, lifetime.cluster, copy)
                reg = self.registers.get(key)
                if reg is None:
                    continue
                start = lifetime.start + copy * ii
                end = max(lifetime.end + copy * ii, start + 1)
                for t in range(start, end):
                    slot = (lifetime.cluster, reg, t % span)
                    holder = occupancy.get(slot)
                    claim = (lifetime.producer, copy)
                    if holder is not None and holder != claim:
                        # The same value's several ValueLifetime segments
                        # (producer + consumer cluster) may legitimately
                        # share; different producers may not.
                        if holder[0] != lifetime.producer:
                            raise AllocationError(
                                f"register r{reg} in cluster "
                                f"{lifetime.cluster} held by {holder} and "
                                f"{claim} at slot {t % span}"
                            )
                    occupancy[slot] = claim


def _degree(lifetime: ValueLifetime, ii: int) -> int:
    """Simultaneously-live instances of one value (its MVE degree)."""
    return max(1, math.ceil(max(lifetime.length, 1) / ii))


def allocate_registers(schedule: Schedule) -> RegisterAssignment:
    """Run MVE and assign physical registers for a schedule.

    Raises :class:`AllocationError` when some cluster needs more
    registers than its file provides (the scheduling-time MaxLive check
    makes this rare but not impossible, since MVE rounds lifetimes up to
    whole II multiples).
    """
    ii = schedule.ii
    lifetimes = _lifetimes(schedule)

    factor = 1
    for lifetime in lifetimes:
        factor = max(factor, _degree(lifetime, ii))

    # Group lifetimes by (producer, cluster): a value communicated to
    # another cluster has one live range there too, with its own backing
    # registers in that cluster's file.
    by_key: Dict[Tuple[str, int], List[ValueLifetime]] = {}
    for lifetime in lifetimes:
        by_key.setdefault((lifetime.producer, lifetime.cluster), []).append(
            lifetime
        )

    assignment = RegisterAssignment(schedule=schedule, unroll_factor=factor)
    next_free: Dict[int, int] = {}
    for (producer, cluster), ranges in sorted(by_key.items()):
        degree = max(_degree(r, ii) for r in ranges)
        base = next_free.get(cluster, 0)
        # The value cycles through `degree` registers; copies beyond the
        # degree reuse them round-robin (their instances never overlap).
        for copy in range(factor):
            assignment.registers[(producer, cluster, copy)] = (
                base + copy % degree
            )
        next_free[cluster] = base + degree

    for cluster, used in next_free.items():
        capacity = schedule.machine.cluster(cluster).n_registers
        assignment.used_per_cluster[cluster] = used
        if used > capacity:
            raise AllocationError(
                f"cluster {cluster} needs {used} registers for the MVE'd "
                f"kernel but has {capacity}"
            )
    assignment.validate()
    return assignment
