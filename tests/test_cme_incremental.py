"""Equivalence and regression suite for the incremental CME engine.

The contract under test: :class:`repro.cme.IncrementalCME` answers every
probe *exactly* like the from-scratch sampled reference
(:meth:`repro.cme.SamplingCME._simulate`) — across generated kernels, op
subsets, cache geometries (associativity, line size), probe orders and
scheduler-style incremental growth — while memoizing on loop *content*
so entries survive GC id reuse, pickling and process fan-out.
"""

import gc
import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cme import IncrementalCME, SamplingCME, loop_fingerprint
from repro.cme.trace import TraceStore
from repro.ir import LoopBuilder
from repro.machine.config import CacheConfig
from repro.workloads import random_kernel

_SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Geometry grid the suite sweeps: direct-mapped and set-associative,
#: small and large lines, including a tiny cache that forces heavy
#: replacement traffic.
GEOMETRIES = (
    CacheConfig(size=256, line_size=16),
    CacheConfig(size=512, line_size=32),
    CacheConfig(size=1024, line_size=32, associativity=2),
    CacheConfig(size=2048, line_size=64, associativity=4),
    CacheConfig(size=4096, line_size=32, associativity=1),
)


def _reference(loop, ops, cache, max_points):
    """From-scratch functional-cache sweep (no memo involved)."""
    return SamplingCME(max_points=max_points)._simulate(
        loop, tuple(op for op in ops if op.is_memory), cache
    )


def _streaming_kernel(n=64, stride=1, name="k"):
    b = LoopBuilder(name)
    i = b.dim("i", 0, n)
    a = b.array("A", (n * max(stride, 1),))
    b.load(a, [b.aff(i=stride)], name="ld")
    return b.build()


# ---------------------------------------------------------------------------
# Exact equivalence with the from-scratch reference
# ---------------------------------------------------------------------------
@_SLOW
@given(
    seed=st.integers(0, 10_000),
    order_seed=st.integers(0, 1_000),
    geometry=st.sampled_from(GEOMETRIES),
    max_points=st.sampled_from([64, 256]),
)
def test_incremental_equals_reference_across_probe_orders(
    seed, order_seed, geometry, max_points
):
    """Random subsets probed in random orders: every answer is exactly
    the from-scratch estimate, regardless of which snapshots exist."""
    kernel = random_kernel(seed)
    loop = kernel.loop
    mem_ops = list(loop.memory_operations)
    rng = random.Random(order_seed)
    analyzer = IncrementalCME(max_points=max_points)
    for _ in range(8):
        subset = rng.sample(mem_ops, rng.randint(0, len(mem_ops)))
        rng.shuffle(subset)
        got = analyzer.estimate(loop, subset, geometry)
        want = _reference(loop, subset, geometry, max_points)
        assert got == want


@_SLOW
@given(seed=st.integers(0, 10_000), geometry=st.sampled_from(GEOMETRIES))
def test_scheduler_growth_pattern_is_exact(seed, geometry):
    """The RMCA probe pattern: residents grow one op at a time, every
    ``resident + [candidate]`` probe answered incrementally is exact."""
    kernel = random_kernel(seed)
    loop = kernel.loop
    mem_ops = list(loop.memory_operations)
    analyzer = IncrementalCME(max_points=128)
    resident = []
    for candidate in mem_ops:
        for other in mem_ops:
            if other in resident:
                continue
            probed = resident + [other]
            got = analyzer.estimate(loop, probed, geometry)
            assert got == _reference(loop, probed, geometry, 128)
            ratio = analyzer.miss_ratio(loop, other, probed, geometry)
            assert ratio == got.miss_ratio(other.name)
        resident.append(candidate)
        count = analyzer.miss_count(loop, resident, geometry)
        assert count == float(
            _reference(loop, resident, geometry, 128).total_misses
        )


@_SLOW
@given(seed=st.integers(0, 10_000))
def test_probe_clusters_matches_per_cluster_reference(seed):
    """The batched sweep returns exactly the per-cluster estimates."""
    kernel = random_kernel(seed)
    loop = kernel.loop
    mem_ops = list(loop.memory_operations)
    if len(mem_ops) < 2:
        return
    candidate, rest = mem_ops[-1], mem_ops[:-1]
    half = len(rest) // 2
    residents = [rest[:half], rest[half:]]
    caches = [GEOMETRIES[1], GEOMETRIES[3]]
    analyzer = IncrementalCME(max_points=128)
    probes = analyzer.probe_clusters(loop, candidate, residents, caches)
    for resident, cache, probe in zip(residents, caches, probes):
        assert probe == _reference(loop, resident + [candidate], cache, 128)
    assert analyzer.telemetry()["batched_calls"] == 1


def test_estimate_is_memoized_and_batched_probes_warm_the_memo():
    kernel = _streaming_kernel()
    loop = kernel.loop
    cache = CacheConfig(size=512, line_size=32)
    analyzer = IncrementalCME(max_points=64)
    ops = list(loop.memory_operations)
    first = analyzer.estimate(loop, ops, cache)
    assert analyzer.estimate(loop, ops, cache) is first
    assert analyzer.telemetry()["memo_hits"] == 1
    # miss_ratio / miss_count over the same set are memo hits too.
    analyzer.miss_ratio(loop, ops[0], ops, cache)
    analyzer.miss_count(loop, ops, cache)
    assert analyzer.telemetry()["memo_hits"] == 3


def test_non_memory_ops_and_empty_sets_match_reference():
    b = LoopBuilder("k")
    i = b.dim("i", 0, 16)
    a = b.array("A", (16,))
    v = b.load(a, [b.aff(i=1)], name="ld")
    b.fadd(v, v, name="add")
    kernel = b.build()
    cache = CacheConfig(size=512, line_size=32)
    analyzer = IncrementalCME(max_points=32)
    est = analyzer.estimate(kernel.loop, kernel.loop.operations, cache)
    assert est == _reference(kernel.loop, kernel.loop.operations, cache, 32)
    assert set(est.accesses) == {"ld"}
    assert analyzer.estimate(kernel.loop, [], cache).total_accesses == 0
    assert analyzer.miss_count(kernel.loop, [], cache) == 0.0


def test_max_points_validation():
    with pytest.raises(ValueError):
        IncrementalCME(max_points=0)


# ---------------------------------------------------------------------------
# Content addressing: sharing, pickling, fan-out
# ---------------------------------------------------------------------------
def test_content_identical_loops_share_memo_entries():
    """Two distinct loop objects with equal content hit one memo entry."""
    cache = CacheConfig(size=512, line_size=32)
    analyzer = IncrementalCME(max_points=64)
    first = _streaming_kernel()
    second = _streaming_kernel()
    assert first.loop is not second.loop
    assert loop_fingerprint(first.loop) == loop_fingerprint(second.loop)
    a = analyzer.estimate(first.loop, first.loop.memory_operations, cache)
    b = analyzer.estimate(second.loop, second.loop.memory_operations, cache)
    assert a is b  # same memo entry, not merely equal


def test_loop_name_does_not_change_the_fingerprint_but_content_does():
    base = _streaming_kernel(name="one")
    renamed = _streaming_kernel(name="two")
    different = _streaming_kernel(stride=2, name="one")
    assert loop_fingerprint(base.loop) == loop_fingerprint(renamed.loop)
    assert loop_fingerprint(base.loop) != loop_fingerprint(different.loop)


def test_pickled_analyzer_ships_warm_traces_not_memos():
    """Grid fan-out pickles the analyzer into workers: the expensive
    content-addressed traces survive the round-trip (no re-walk of the
    iteration space), while the unbounded probe memos are dropped —
    workers rebuild snapshots from the traces."""
    cache = CacheConfig(size=512, line_size=32)
    analyzer = IncrementalCME(max_points=64)
    kernel = _streaming_kernel()
    want = analyzer.estimate(kernel.loop, kernel.loop.memory_operations, cache)
    clone = pickle.loads(pickle.dumps(analyzer))
    assert clone.telemetry()["address_traces"] >= 1
    assert clone.telemetry()["snapshots"] == 0
    builds_before = clone.traces.address_builds
    fresh = _streaming_kernel()  # a worker resolves its own loop objects
    got = clone.estimate(fresh.loop, fresh.loop.memory_operations, cache)
    assert got == want
    assert clone.traces.address_builds == builds_before  # trace reused


def test_shared_trace_store_is_reused_across_analyzers():
    store = TraceStore()
    first = IncrementalCME(max_points=64, traces=store)
    second = IncrementalCME(max_points=64, traces=store)
    kernel = _streaming_kernel()
    cache = CacheConfig(size=512, line_size=32)
    first.estimate(kernel.loop, kernel.loop.memory_operations, cache)
    builds = store.address_builds
    second.estimate(kernel.loop, kernel.loop.memory_operations, cache)
    assert store.address_builds == builds  # no rebuild


# ---------------------------------------------------------------------------
# The id(loop) aliasing regression (satellite fix)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "analyzer_factory", [SamplingCME, IncrementalCME], ids=["sampling", "incremental"]
)
def test_gc_id_reuse_cannot_alias_a_stale_estimate(analyzer_factory):
    """A GC'd loop's address recycled by a fresh, *different* loop must
    not serve the dead loop's estimate.

    The historical memo keyed on ``id(loop)``: allocate a loop whose
    single load always misses, drop it, and allocate a different loop
    (same op name, same geometry — the rest of the old key) until the
    allocator hands back the same address.  Content-fingerprint keys
    make the collision impossible; the id-keyed memo returned the stale
    always-miss estimate for the stride-1 loop.
    """
    cache = CacheConfig(size=512, line_size=32)
    analyzer = analyzer_factory(max_points=64)
    hot_ids = set()
    hot = [_streaming_kernel(stride=8) for _ in range(150)]  # always miss
    for kernel in hot:
        loop = kernel.loop
        est = analyzer.estimate(loop, loop.memory_operations, cache)
        assert est.miss_ratio("ld") == 1.0
        hot_ids.add(id(loop))
    del hot, kernel, loop, est
    gc.collect()
    cold = [_streaming_kernel(stride=1) for _ in range(150)]  # miss per line
    collisions = sum(1 for kernel in cold if id(kernel.loop) in hot_ids)
    for kernel in cold:
        got = analyzer.estimate(
            kernel.loop, kernel.loop.memory_operations, cache
        )
        # The id-keyed memo served the stale always-miss estimate here
        # whenever the allocator recycled a hot loop's address.
        assert got.miss_ratio("ld") < 1.0
    if collisions == 0:
        pytest.skip("allocator never recycled a loop address")
