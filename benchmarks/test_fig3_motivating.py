"""Figure 3: the motivating example.

Reproduces both hand-crafted schedules of Section 3, simulates them on
the Section 3 machine, and checks the paper's claims:

* schedule (a) — register-optimal: II=3, SC=4, 1 comm/iteration, every
  load ping-pongs; total cycles match the closed form 15N+9 exactly,
* schedule (b) — locality-aware: II=4, SC=3, 2 comms/iteration, the
  ping-pong disappears; total is at least as good as the closed form
  10N+8 (the paper's estimate ignores communication slack),
* (b) beats (a) by at least the paper's 1.5x,
* the RMCA scheduler *discovers* the (b) partition on its own and the
  Baseline does not.
"""

from repro.analysis.compare import make_scheduler
from repro.harness.report import format_table
from repro.simulator import simulate
from repro.workloads import (
    figure3a_schedule,
    figure3b_schedule,
    motivating_kernel,
    motivating_machine,
    paper_total_cycles_a,
    paper_total_cycles_b,
)

from conftest import save_and_print


def _run():
    kernel = motivating_kernel()
    machine = motivating_machine()
    niter = kernel.loop.n_iterations
    rows = []
    outcome = {}
    for label, schedule in (
        ("figure3a", figure3a_schedule(kernel, machine)),
        ("figure3b", figure3b_schedule(kernel, machine)),
    ):
        result = simulate(schedule)
        outcome[label] = (schedule, result)
        paper = (
            paper_total_cycles_a(niter)
            if label == "figure3a"
            else paper_total_cycles_b(niter)
        )
        rows.append(
            (label, schedule.ii, schedule.stage_count,
             schedule.n_communications, result.compute_cycles,
             result.stall_cycles, result.total_cycles, paper)
        )
    for name in ("baseline", "rmca"):
        engine = make_scheduler(name, threshold=1.0)
        schedule = engine.schedule(kernel, machine)
        result = simulate(schedule)
        outcome[name] = (schedule, result)
        rows.append(
            (name, schedule.ii, schedule.stage_count,
             schedule.n_communications, result.compute_cycles,
             result.stall_cycles, result.total_cycles, "-")
        )
    table = format_table(
        ["schedule", "II", "SC", "comms", "compute", "stall", "total",
         "paper closed form"],
        rows,
    )
    return kernel, outcome, table


def test_figure3(benchmark, results_dir):
    kernel, outcome, table = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_and_print(results_dir, "fig3", table)
    niter = kernel.loop.n_iterations

    sched_a, result_a = outcome["figure3a"]
    sched_b, result_b = outcome["figure3b"]

    # Shapes from the paper's Figure 3.
    assert (sched_a.ii, sched_a.stage_count, sched_a.n_communications) == (3, 4, 1)
    assert (sched_b.ii, sched_b.stage_count, sched_b.n_communications) == (4, 3, 2)

    # Closed forms: (a) exact, (b) bounded by the estimate.
    assert result_a.total_cycles == paper_total_cycles_a(niter)
    assert result_b.total_cycles <= paper_total_cycles_b(niter)

    # The headline speedup (paper: 1.5x asymptotically).
    assert result_a.total_cycles / result_b.total_cycles >= 1.5

    # The schedulers: RMCA finds the per-array partition, Baseline keeps
    # conflicting streams together and pays for it.
    rmca_sched, rmca_result = outcome["rmca"]
    base_sched, base_result = outcome["baseline"]
    assert rmca_sched.cluster_of("ld1") == rmca_sched.cluster_of("ld3")
    assert rmca_sched.cluster_of("ld2") == rmca_sched.cluster_of("ld4")
    assert rmca_sched.cluster_of("ld1") != rmca_sched.cluster_of("ld2")
    assert base_result.total_cycles / rmca_result.total_cycles >= 1.5
