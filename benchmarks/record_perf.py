"""Record the PR 10 plan-execution numbers: wall-clock, per-stage hit
rates and plan counters for cold and warm passes on the fig6, streaming
and fig6-steady-ablation scenarios, with the stage-task plan on (the
new default) and off (the per-cell reference walk, ``--no-plan``).

Each trial builds one fresh in-memory ``StageStore`` per mode and runs
the scenario cold against it (every unique analyze/schedule/simulate
key executes exactly once under the plan; the reference path discovers
the same dedup reactively) and then warm (every unique key hits at
plan time — the plan has zero tasks left to execute).  Results must be
identical across modes and passes (bars for figure scenarios, per-cell
cycle/stall/memory digests for grid scenarios); timings, per-stage
second splits, stage-store counters and the plan counters
(planned/executed task counts, batch count, max co-batch width) go to
``benchmarks/BENCH_pr10.json``.

The acceptance bar of PR 10: on the cold fig6 pass the planned task
counts equal the unique store keys (``schedule_tasks ==
schedule stores``, same for simulate — nothing executes twice), the
simulate batches are wider than one cell (``batch_width_max > 1``),
the warm pass plans zero tasks, and every digest matches the no-plan
reference bit for bit.  The PR 7 recording
(``benchmarks/BENCH_pr7.json``, same container/protocol) is quoted
alongside.

Usage::

    PYTHONPATH=src python benchmarks/record_perf.py [--out PATH]
        [--skip-fig6] [--repeats N]

Single-job on purpose: the point is the up-front dedup and the
co-batched simulate, not process fan-out (which composes with both).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.engine import StageStore
from repro.harness.grid import ExperimentGrid
from repro.harness.scenarios import get_scenario, run_scenario

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_pr10.json"
PR7_RECORDING = pathlib.Path(__file__).parent / "BENCH_pr7.json"

#: Execution modes under comparison; results are bit-identical.
MODES = ("noplan", "plan")
#: Store passes per mode: "cold" primes a fresh store (in-run dedup
#: only), "warm" replays from it.
PASSES = ("cold", "warm")


def _digest(outcome):
    """Mode- and store-independent fingerprint of a scenario's results."""
    if outcome.figure is not None:
        return [
            (bar.group, bar.scheduler, bar.threshold,
             bar.norm_compute, bar.norm_stall)
            for bar in outcome.figure.bars
        ]
    return [
        (result.kernel, result.machine, result.scheduler, result.threshold,
         result.total_cycles, result.stall_cycles,
         result.simulation.memory.as_dict())
        for result in outcome.results
    ]


def _run_pass(scenario, mode: str, store: StageStore) -> dict:
    grid = ExperimentGrid(
        locality=scenario.locality.build(),
        cache=False,
        plan=mode == "plan",
    )
    grid.stage_store = store
    before = store.telemetry()
    start = time.perf_counter()
    outcome = run_scenario(scenario, grid=grid, steady="auto")
    seconds = time.perf_counter() - start
    after = store.telemetry()
    sample = {
        "seconds": round(seconds, 3),
        "cells_requested": grid.stats.requested,
        "cells_computed": grid.stats.computed,
        "stage_seconds": {
            stage: round(value, 3)
            for stage, value in grid.stats.stage_seconds.items()
        },
        "stage_store": {
            stage: {
                counter: after[stage][counter] - before[stage][counter]
                for counter in ("hits", "misses", "stores")
            }
            for stage in after
        },
        "digest": _digest(outcome),
    }
    if mode == "plan":
        plan = dict(grid.stats.plan)
        plan["planned"] = (
            plan.get("analyze_tasks", 0)
            + plan.get("schedule_unique", 0)
            + plan.get("simulate_unique", 0)
        )
        plan["executed"] = (
            plan.get("analyze_tasks", 0)
            + plan.get("schedule_tasks", 0)
            + plan.get("simulate_tasks", 0)
        )
        sample["plan"] = plan
    return sample


def _measure(scenario_name: str, repeats: int) -> dict:
    """Best cold/warm pair per mode over ``repeats`` trials (fresh
    store per mode per trial)."""
    scenario = get_scenario(scenario_name)
    best = None
    for _ in range(repeats):
        trial = {}
        for mode in MODES:
            store = StageStore()  # in-memory only: no disk layer
            trial[mode] = {
                "cold": _run_pass(scenario, mode, store),
                "warm": _run_pass(scenario, mode, store),
            }
        if best is None or (
            trial["plan"]["cold"]["seconds"]
            < best["plan"]["cold"]["seconds"]
        ):
            best = trial
    return best


def _pr7_baseline() -> dict:
    """Quote the PR 7 recording (same protocol) when it is available."""
    if not PR7_RECORDING.exists():
        return {"note": "BENCH_pr7.json not found"}
    data = json.loads(PR7_RECORDING.read_text())
    quoted = {}
    for name, entry in data.get("scenarios", {}).items():
        runs = entry.get("sims", {}).get("vectorized", {})
        quoted[name] = {
            pass_name: {
                "seconds": run.get("seconds"),
                "simulate_stage_seconds": run.get("stage_seconds", {}).get(
                    "simulate"
                ),
            }
            for pass_name, run in runs.items()
        }
    return quoted


def _speedup(before, after):
    # 0.0 denominators mean "unmeasurably fast" — no ratio to quote.
    if before is None or not after:
        return None
    return round(before / after, 2)


def record(scenarios, out: pathlib.Path, repeats: int) -> dict:
    pr7 = _pr7_baseline()
    results = {}
    for name in scenarios:
        print(f"[{name}] ...", flush=True)
        modes = _measure(name, repeats)
        for mode in MODES:
            for pass_name in PASSES:
                sample = modes[mode][pass_name]
                hits = sample["stage_store"]
                line = (
                    f"[{name}]   {mode}/{pass_name}: {sample['seconds']}s"
                    f", stage hits sched "
                    f"{hits['schedule']['hits']}/"
                    f"{hits['schedule']['hits'] + hits['schedule']['misses']}"
                    f" sim {hits['simulate']['hits']}/"
                    f"{hits['simulate']['hits'] + hits['simulate']['misses']}"
                )
                plan = sample.get("plan")
                if plan:
                    line += (
                        f", planned {plan['planned']} executed "
                        f"{plan['executed']}, {plan.get('batches', 0)} "
                        f"batches (max width "
                        f"{plan.get('batch_width_max', 0)})"
                    )
                print(line, flush=True)
        reference = modes["noplan"]["cold"]["digest"]
        for mode in MODES:
            for pass_name, sample in modes[mode].items():
                if sample["digest"] != reference:
                    raise AssertionError(
                        f"{name}: {mode} {pass_name} pass diverges from "
                        f"the no-plan cold reference"
                    )
                del sample["digest"]
        pr7_entry = pr7.get(name) or {}
        results[name] = {
            "modes": modes,
            #: The PR's headline numbers: plan vs the per-cell reference
            #: walk on the same (cold/warm) store state.
            "speedup_cold_plan_vs_noplan": _speedup(
                modes["noplan"]["cold"]["seconds"],
                modes["plan"]["cold"]["seconds"],
            ),
            "speedup_warm_plan_vs_noplan": _speedup(
                modes["noplan"]["warm"]["seconds"],
                modes["plan"]["warm"]["seconds"],
            ),
            "speedup_warm_vs_cold_plan": _speedup(
                modes["plan"]["cold"]["seconds"],
                modes["plan"]["warm"]["seconds"],
            ),
            #: Cross-PR: PR 7's passes (reactive store, per-cell walk)
            #: vs this PR's plan passes (same store, planned DAG).
            "speedup_cold_vs_pr7_cold": _speedup(
                (pr7_entry.get("cold") or {}).get("seconds"),
                modes["plan"]["cold"]["seconds"],
            ),
            "speedup_warm_vs_pr7_warm": _speedup(
                (pr7_entry.get("warm") or {}).get("seconds"),
                modes["plan"]["warm"]["seconds"],
            ),
        }
    payload = {
        "pr": 10,
        "protocol": (
            "single-job ExperimentGrid, cell cache disabled, steady=auto, "
            "vectorized engine, incremental CME analyzer, fresh in-memory "
            "StageStore per mode per trial; each mode runs the scenario "
            "cold (priming the store) then warm (replaying from it), with "
            "the stage-task plan on (default) and off (per-cell reference "
            f"walk); best cold plan pass of {repeats} trials, identical "
            "results asserted across modes and passes"
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "pr7_baseline": pr7,
        "scenarios": results,
    }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--skip-fig6", action="store_true",
        help="record only the smaller scenarios (fig6 is the larger grid)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="cold+warm trials per mode; the best cold plan pass is "
             "recorded (default: 3)",
    )
    args = parser.parse_args(argv)
    scenarios = ["streaming", "fig6-steady-ablation"]
    if not args.skip_fig6:
        scenarios.append("fig6-2cluster")
    payload = record(scenarios, args.out, args.repeats)
    failed = False
    for name, entry in payload["scenarios"].items():
        plan_cold = entry["modes"]["plan"]["cold"]
        plan_warm = entry["modes"]["plan"]["warm"]
        print(
            f"{name}: cold plan {entry['speedup_cold_plan_vs_noplan']}x "
            f"vs no-plan (warm {entry['speedup_warm_plan_vs_noplan']}x, "
            f"warm-vs-cold {entry['speedup_warm_vs_cold_plan']}x)"
        )
        counters = plan_cold["plan"]
        store = plan_cold["stage_store"]
        # Cold acceptance: every unique key executed exactly once.
        if counters["schedule_tasks"] != store["schedule"]["stores"]:
            print(
                f"WARNING: {name} cold plan executed "
                f"{counters['schedule_tasks']} schedule tasks but stored "
                f"{store['schedule']['stores']} entries"
            )
            failed = True
        if counters["simulate_tasks"] != store["simulate"]["stores"]:
            print(
                f"WARNING: {name} cold plan executed "
                f"{counters['simulate_tasks']} simulate tasks but stored "
                f"{store['simulate']['stores']} entries"
            )
            failed = True
        # Warm acceptance: every unique key hits at plan time.
        if plan_warm["plan"]["executed"] != plan_warm["plan"].get(
            "analyze_tasks", 0
        ):
            print(
                f"WARNING: {name} warm plan still executed "
                f"{plan_warm['plan']['executed']} tasks"
            )
            failed = True
        if name == "fig6-2cluster":
            if counters.get("batch_width_max", 0) <= 1:
                print(
                    f"WARNING: {name} cold plan never co-batched simulate "
                    f"(max width {counters.get('batch_width_max', 0)})"
                )
                failed = True
            if counters["simulate_unique"] >= counters["cells"]:
                print(
                    f"WARNING: {name} threshold sweep deduplicated no "
                    f"simulate work"
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
