"""Unit tests for the sampling CME backend (functional cache sweep)."""

import pytest

from repro.cme.sampling import MissEstimate, SamplingCME, _FunctionalCache
from repro.ir import LoopBuilder
from repro.machine.config import CacheConfig


def _streaming_kernel(n=256, stride=1):
    b = LoopBuilder("stream")
    i = b.dim("i", 0, n)
    a = b.array("A", (n * stride,))
    b.load(a, [b.aff(i=stride)], name="ld")
    return b.build()


def _pingpong_kernel(cache_bytes=1024):
    """Two arrays one cache-image apart: every access conflicts."""
    b = LoopBuilder("pingpong")
    i = b.dim("i", 0, 64)
    x = b.array("X", (64,), base=0)
    y = b.array("Y", (64,), base=cache_bytes)
    b.load(x, [b.aff(i=1)], name="ld_x")
    b.load(y, [b.aff(i=1)], name="ld_y")
    return b.build()


class TestFunctionalCache:
    def test_miss_then_hit(self):
        cache = _FunctionalCache(CacheConfig(size=1024, line_size=32))
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(31)  # same line

    def test_conflict_eviction_direct_mapped(self):
        cache = _FunctionalCache(CacheConfig(size=1024, line_size=32))
        cache.access(0)
        cache.access(1024)  # same set, different tag
        assert not cache.access(0)

    def test_associativity_keeps_both(self):
        cache = _FunctionalCache(
            CacheConfig(size=1024, line_size=32, associativity=2)
        )
        cache.access(0)
        cache.access(1024)
        assert cache.access(0)
        assert cache.access(1024)

    def test_lru_within_set(self):
        cache = _FunctionalCache(
            CacheConfig(size=1024, line_size=32, associativity=2)
        )
        cache.access(0)
        cache.access(1024)
        cache.access(0)       # 1024 is now LRU
        cache.access(2048)    # evicts 1024
        assert cache.access(0)
        assert not cache.access(1024)


class TestMissEstimate:
    def test_ratios(self):
        est = MissEstimate(
            accesses={"a": 10, "b": 4}, misses={"a": 5, "b": 0}
        )
        assert est.miss_ratio("a") == 0.5
        assert est.miss_ratio("b") == 0.0
        assert est.total_accesses == 14
        assert est.total_misses == 5
        assert est.total_miss_ratio == pytest.approx(5 / 14)

    def test_unknown_op_ratio_zero(self):
        assert MissEstimate().miss_ratio("nope") == 0.0

    def test_empty_total_ratio(self):
        assert MissEstimate().total_miss_ratio == 0.0


class TestSamplingCME:
    def test_unit_stride_ratio_is_line_fraction(self):
        kernel = _streaming_kernel()
        cache = CacheConfig(size=1024, line_size=32)
        cme = SamplingCME(max_points=256)
        ratio = cme.miss_ratio(
            kernel.loop, kernel.loop.operation("ld"),
            kernel.loop.memory_operations, cache,
        )
        # 8-byte elements, 32-byte lines: one miss per 4 accesses.
        assert ratio == pytest.approx(0.25, abs=0.02)

    def test_large_stride_always_misses(self):
        kernel = _streaming_kernel(n=128, stride=8)
        cache = CacheConfig(size=512, line_size=32)
        cme = SamplingCME(max_points=128)
        ratio = cme.miss_ratio(
            kernel.loop, kernel.loop.operation("ld"),
            kernel.loop.memory_operations, cache,
        )
        assert ratio == 1.0

    def test_pingpong_conflict_detected(self):
        kernel = _pingpong_kernel()
        cache = CacheConfig(size=1024, line_size=32)
        cme = SamplingCME(max_points=128)
        ops = kernel.loop.memory_operations
        for op in ops:
            assert cme.miss_ratio(kernel.loop, op, ops, cache) == 1.0

    def test_pingpong_disappears_in_isolation(self):
        kernel = _pingpong_kernel()
        cache = CacheConfig(size=1024, line_size=32)
        cme = SamplingCME(max_points=128)
        ld_x = kernel.loop.operation("ld_x")
        ratio = cme.miss_ratio(kernel.loop, ld_x, [ld_x], cache)
        assert ratio == pytest.approx(0.25, abs=0.05)

    def test_miss_count_consistent_with_ratios(self):
        kernel = _pingpong_kernel()
        cache = CacheConfig(size=1024, line_size=32)
        cme = SamplingCME(max_points=128)
        ops = kernel.loop.memory_operations
        count = cme.miss_count(kernel.loop, ops, cache)
        assert count == pytest.approx(2 * 64)  # both always miss

    def test_memoization_returns_same_object(self):
        kernel = _streaming_kernel()
        cache = CacheConfig(size=1024, line_size=32)
        cme = SamplingCME(max_points=64)
        ops = kernel.loop.memory_operations
        first = cme.estimate(kernel.loop, ops, cache)
        second = cme.estimate(kernel.loop, ops, cache)
        assert first is second

    def test_op_order_does_not_matter_for_memoization(self):
        """Keys sort op names, so permutations share the cache entry."""
        kernel = _pingpong_kernel()
        cache = CacheConfig(size=1024, line_size=32)
        cme = SamplingCME(max_points=64)
        ops = list(kernel.loop.memory_operations)
        first = cme.estimate(kernel.loop, ops, cache)
        second = cme.estimate(kernel.loop, list(reversed(ops)), cache)
        assert first is second

    def test_non_memory_ops_ignored(self):
        b = LoopBuilder("k")
        i = b.dim("i", 0, 16)
        a = b.array("A", (16,))
        v = b.load(a, [b.aff(i=1)], name="ld")
        b.fadd(v, v, name="add")
        kernel = b.build()
        cme = SamplingCME(max_points=32)
        cache = CacheConfig(size=512, line_size=32)
        est = cme.estimate(kernel.loop, kernel.loop.operations, cache)
        assert set(est.accesses) == {"ld"}

    def test_max_points_validation(self):
        with pytest.raises(ValueError):
            SamplingCME(max_points=0)

    def test_empty_op_set(self):
        kernel = _streaming_kernel()
        cme = SamplingCME(max_points=32)
        cache = CacheConfig(size=512, line_size=32)
        assert cme.miss_count(kernel.loop, [], cache) == 0.0
