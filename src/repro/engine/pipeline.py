"""The composable cell pipeline: build → analyze → schedule → simulate →
measure.

:class:`CellPipeline` threads a :class:`~repro.engine.stages.CellContext`
through an ordered list of stages, timing each one into a
:class:`StageRecord`.  The default stage list reproduces exactly what the
historical ``run_cell`` monolith did; custom pipelines can drop, replace
or wrap stages (e.g. a tracing simulate stage) without touching the grid
or the sweeps, which only consume :class:`CellOutcome`.

This per-cell walk is the grid's *reference* execution path
(``--no-plan``): by default :class:`~repro.harness.grid.ExperimentGrid`
executes whole grids through :mod:`repro.engine.plan`, which dedups the
same stage work up front instead of discovering store hits one cell at
a time.  Results are bit-identical either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .result import CELL_EXECUTIONS, RunResult
from .stages import (
    AnalyzeStage,
    BuildStage,
    CellContext,
    CellRequest,
    MeasureStage,
    ScheduleStage,
    SimulateStage,
    Stage,
)

__all__ = [
    "StageRecord",
    "PipelineReport",
    "CellOutcome",
    "CellPipeline",
    "default_stages",
    "execute_cell",
]


@dataclass(frozen=True)
class StageRecord:
    """Timing plus stage-specific statistics of one stage execution."""

    stage: str
    seconds: float
    stats: Mapping[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "seconds": self.seconds,
            **dict(self.stats),
        }


@dataclass
class PipelineReport:
    """Per-stage records of one cell execution, in pipeline order."""

    records: List[StageRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.records)

    @property
    def stage_seconds(self) -> Dict[str, float]:
        return {record.stage: record.seconds for record in self.records}

    def stage(self, name: str) -> StageRecord:
        for record in self.records:
            if record.stage == name:
                return record
        raise KeyError(
            f"no stage {name!r}; ran {[r.stage for r in self.records]}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "total_seconds": self.total_seconds,
            "stages": [record.as_dict() for record in self.records],
        }


@dataclass
class CellOutcome:
    """What executing one cell produced: the result plus its report."""

    result: RunResult
    report: PipelineReport


def default_stages() -> List[Stage]:
    """The canonical stage list (fresh instances, stages are stateless)."""
    return [
        BuildStage(),
        AnalyzeStage(),
        ScheduleStage(),
        SimulateStage(),
        MeasureStage(),
    ]


class CellPipeline:
    """Executes cell requests through an ordered list of stages."""

    def __init__(self, stages: Optional[Sequence[Stage]] = None):
        self.stages: List[Stage] = (
            list(stages) if stages is not None else default_stages()
        )

    def run(self, request: CellRequest) -> CellOutcome:
        """Execute one cell; every stage runs, each timed into a record."""
        CELL_EXECUTIONS.increment()
        ctx = CellContext(request=request)
        records: List[StageRecord] = []
        for stage in self.stages:
            start = time.perf_counter()
            stats = stage.run(ctx) or {}
            records.append(
                StageRecord(
                    stage=stage.name,
                    seconds=time.perf_counter() - start,
                    stats=stats,
                )
            )
        if ctx.result is None:
            raise RuntimeError(
                "pipeline finished without producing a result; stage list "
                f"{[stage.name for stage in self.stages]} lacks a measure stage"
            )
        return CellOutcome(result=ctx.result, report=PipelineReport(records))


def execute_cell(request: CellRequest) -> CellOutcome:
    """Run one request through a default pipeline."""
    return CellPipeline().run(request)
