"""Machine model: cluster/bus/cache configuration and Table 1 presets."""

from .config import (
    DEFAULT_LATENCIES,
    BusConfig,
    CacheConfig,
    ClusterConfig,
    MachineConfig,
)
from .presets import (
    ALL_PRESETS,
    TOTAL_CACHE_BYTES,
    TOTAL_REGISTERS,
    four_cluster,
    heterogeneous,
    preset,
    two_cluster,
    unified,
)

__all__ = [
    "ALL_PRESETS",
    "BusConfig",
    "CacheConfig",
    "ClusterConfig",
    "DEFAULT_LATENCIES",
    "MachineConfig",
    "TOTAL_CACHE_BYTES",
    "TOTAL_REGISTERS",
    "four_cluster",
    "heterogeneous",
    "preset",
    "two_cluster",
    "unified",
]
