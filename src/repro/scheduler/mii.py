"""Minimum initiation interval (MII) computation.

``MII = max(ResMII, RecMII)`` where

* **ResMII** is the resource-constrained bound: for each FU kind, the
  number of operations of that kind divided by the total number of such
  units in the machine (the paper schedules onto the whole machine, so the
  bound uses aggregate resources),
* **RecMII** is the recurrence-constrained bound: for every dependence
  cycle C, ``II * distance(C) >= latency(C)`` must hold.

RecMII is computed by binary search on II with a positive-cycle test on
edge weights ``latency(e) - II * distance(e)`` (Bellman–Ford based), which
is robust for multigraphs and avoids enumerating an exponential number of
elementary circuits.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

import networkx as nx

from ..ir.ddg import DependenceGraph
from ..ir.operations import FUType, Operation
from ..machine.config import MachineConfig

__all__ = [
    "res_mii",
    "rec_mii",
    "compute_mii",
    "edge_latency",
]

LatencyFn = Callable[[Operation], int]


def edge_latency(
    producer: Operation, kind: str, machine: MachineConfig,
    latency_of: Optional[LatencyFn] = None,
) -> int:
    """Latency contributed by a dependence edge.

    Flow edges wait for the producer's result (its full latency, possibly
    overridden per-op by binding prefetching).  Anti dependences allow
    same-cycle issue in a VLIW (latency 0); output and memory-ordering
    edges serialize by one cycle.
    """
    if kind == "flow":
        if latency_of is not None:
            return latency_of(producer)
        return machine.latency(producer.opclass)
    if kind == "anti":
        return 0
    return 1  # output, mem


def res_mii(ddg: DependenceGraph, machine: MachineConfig) -> int:
    """Resource-constrained lower bound on the II."""
    demand: Dict[FUType, int] = {fu: 0 for fu in FUType}
    for name in ddg.nodes():
        demand[ddg.op(name).fu_type] += 1
    bound = 1
    for fu, count in demand.items():
        supply = sum(cluster.n_units(fu) for cluster in machine.clusters)
        if count == 0:
            continue
        if supply == 0:
            raise ValueError(f"loop needs {fu.value} units but machine has none")
        bound = max(bound, math.ceil(count / supply))
    return bound


def _has_positive_cycle(
    ddg: DependenceGraph,
    ii: int,
    machine: MachineConfig,
    latency_of: Optional[LatencyFn],
) -> bool:
    """True when some cycle has total ``latency - ii*distance > 0``.

    Implemented as negative-cycle detection on negated weights; parallel
    edges are collapsed to their maximum weight, which is exact for this
    test.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(ddg.nodes())
    for edge in ddg.edges():
        lat = edge_latency(ddg.op(edge.src), edge.kind, machine, latency_of)
        weight = lat - ii * edge.distance
        if graph.has_edge(edge.src, edge.dst):
            if weight <= graph[edge.src][edge.dst]["weight"]:
                continue
        graph.add_edge(edge.src, edge.dst, weight=weight)
    negated = nx.DiGraph()
    negated.add_nodes_from(graph.nodes())
    for src, dst, data in graph.edges(data=True):
        negated.add_edge(src, dst, weight=-data["weight"])
    return nx.negative_edge_cycle(negated, weight="weight")


def rec_mii(
    ddg: DependenceGraph,
    machine: MachineConfig,
    latency_of: Optional[LatencyFn] = None,
) -> int:
    """Recurrence-constrained lower bound on the II.

    ``latency_of`` optionally overrides per-operation latencies (used to
    test whether binding-prefetching a load would raise the II through a
    recurrence, Section 4.3).
    """
    if not any(True for _ in ddg.edges()):
        return 1
    low, high = 1, 1
    total_latency = sum(
        edge_latency(ddg.op(e.src), e.kind, machine, latency_of)
        for e in ddg.edges()
    )
    high = max(1, total_latency)
    if _has_positive_cycle(ddg, high, machine, latency_of):
        # Only possible with a zero-distance cycle, which is malformed.
        raise ValueError("dependence graph has a zero-distance cycle")
    if not _has_positive_cycle(ddg, low, machine, latency_of):
        return 1
    while low < high:
        mid = (low + high) // 2
        if _has_positive_cycle(ddg, mid, machine, latency_of):
            low = mid + 1
        else:
            high = mid
    return low


def compute_mii(
    ddg: DependenceGraph,
    machine: MachineConfig,
    latency_of: Optional[LatencyFn] = None,
) -> Tuple[int, int, int]:
    """Return ``(mii, res_mii, rec_mii)``."""
    res = res_mii(ddg, machine)
    rec = rec_mii(ddg, machine, latency_of)
    return max(res, rec), res, rec
