"""Simulation result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..memory.hierarchy import MemoryStats

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of executing a modulo-scheduled loop.

    Follows the paper's decomposition (Section 2.2):
    ``total = compute + stall``, where compute is the statically known
    ``NTIMES * (NITER + SC - 1) * II`` and stall accumulates the dynamic
    lockstep stalls caused by memory latencies the compiler
    underestimated, MSHR pressure and bus contention.
    """

    kernel: str
    machine: str
    scheduler: str
    threshold: float
    ii: int
    stage_count: int
    n_times: int
    n_iterations: int
    compute_cycles: int
    stall_cycles: int
    memory: MemoryStats = field(default_factory=MemoryStats)
    register_comms: int = 0  # dynamic inter-cluster register transfers

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def stall_fraction(self) -> float:
        total = self.total_cycles
        return self.stall_cycles / total if total else 0.0

    @property
    def cycles_per_iteration(self) -> float:
        iterations = self.n_times * self.n_iterations
        return self.total_cycles / iterations if iterations else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel,
            "machine": self.machine,
            "scheduler": self.scheduler,
            "threshold": self.threshold,
            "ii": self.ii,
            "sc": self.stage_count,
            "compute_cycles": self.compute_cycles,
            "stall_cycles": self.stall_cycles,
            "total_cycles": self.total_cycles,
            "register_comms": self.register_comms,
            **{f"mem_{k}": v for k, v in self.memory.as_dict().items()},
        }
