"""Register lifetime and pressure analysis for modulo schedules.

A modulo-scheduled value defined at time ``d`` and last used at time ``u``
is live for ``u - d`` cycles; because a new instance is created every II
cycles, the value occupies ``ceil`` overlapping registers.  MaxLive per
cluster is computed by summing, for every modulo slot, the number of
concurrently live instances, and the schedule is feasible only when every
cluster's MaxLive fits its register file (the paper restarts with II+1
otherwise).

Cross-cluster values additionally occupy a register in the *destination*
cluster from the bus arrival until their last local use (the IRV latch is
written into the local register file per the ISA of Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.builder import Kernel
from ..machine.config import MachineConfig
from .result import Communication, Placement, Schedule

__all__ = ["ValueLifetime", "cluster_pressures", "max_live", "pressure_ok"]


@dataclass(frozen=True)
class ValueLifetime:
    """Live range of one value inside one cluster."""

    producer: str
    cluster: int
    start: int  # value becomes available
    end: int  # last read (exclusive end of the live range)

    @property
    def length(self) -> int:
        return max(0, self.end - self.start)


def _lifetimes(
    schedule: Schedule,
) -> List[ValueLifetime]:
    """Live ranges implied by the placements and communications."""
    kernel = schedule.kernel
    ddg = kernel.ddg
    ii = schedule.ii
    ranges: List[ValueLifetime] = []

    comms_by_key: Dict[Tuple[str, int], List[Communication]] = {}
    for comm in schedule.communications:
        comms_by_key.setdefault((comm.producer, comm.dst_cluster), []).append(comm)

    for name, placement in schedule.placements.items():
        op = kernel.loop.operation(name)
        if op.dest is None:
            continue
        ready = placement.time + placement.assumed_latency
        # A load's destination register is reserved from issue: the MSHR
        # of the lockup-free cache holds it while the fill is outstanding.
        # This is why binding prefetching (Section 4.3) raises register
        # pressure — the lifetime grows by the full miss latency.
        start = placement.time if op.is_load else ready
        # Last use in the producer cluster: local consumers plus the
        # departure time of any outgoing communication.
        local_last = ready
        remote_last: Dict[int, int] = {}
        for edge in ddg.out_edges(name):
            if edge.kind != "flow":
                continue
            consumer = schedule.placements[edge.dst]
            use_time = consumer.time + ii * edge.distance
            if consumer.cluster == placement.cluster:
                local_last = max(local_last, use_time)
            else:
                remote_last[consumer.cluster] = max(
                    remote_last.get(consumer.cluster, 0), use_time
                )
        for dst_cluster, last_use in remote_last.items():
            comms = comms_by_key.get((name, dst_cluster), [])
            if comms:
                departure = max(c.start for c in comms)
                local_last = max(local_last, departure)
                arrival = min(c.arrival for c in comms)
                ranges.append(
                    ValueLifetime(name, dst_cluster, arrival, last_use)
                )
        ranges.append(
            ValueLifetime(name, placement.cluster, start, local_last)
        )
    return ranges


def cluster_pressures(schedule: Schedule) -> Dict[int, int]:
    """MaxLive per cluster for a schedule."""
    ii = schedule.ii
    per_slot: Dict[int, List[int]] = {
        c: [0] * ii for c in range(schedule.machine.n_clusters)
    }
    for lifetime in _lifetimes(schedule):
        if lifetime.length <= 0:
            # A value produced and never consumed still needs a register
            # in its definition cycle.
            slots = per_slot[lifetime.cluster]
            slots[lifetime.start % ii] += 1
            continue
        slots = per_slot[lifetime.cluster]
        for t in range(lifetime.start, lifetime.end):
            slots[t % ii] += 1
    return {c: max(slots) if slots else 0 for c, slots in per_slot.items()}


def max_live(schedule: Schedule) -> int:
    """Largest per-cluster MaxLive."""
    pressures = cluster_pressures(schedule)
    return max(pressures.values(), default=0)


def pressure_ok(schedule: Schedule) -> bool:
    """True when every cluster's MaxLive fits its register file."""
    pressures = cluster_pressures(schedule)
    for cluster_id, pressure in pressures.items():
        if pressure > schedule.machine.cluster(cluster_id).n_registers:
            return False
    return True
