"""Parallel experiment-grid engine with cell caching.

Every figure of the paper's evaluation is a grid of independent
``kernel × machine × scheduler × threshold`` cells.  This module turns
that observation into infrastructure:

* :class:`CellSpec` — a hashable, JSON-serializable description of one
  cell.  The machine is carried as its canonical
  :meth:`~repro.machine.config.MachineConfig.to_dict` JSON encoding and
  the kernel as ``name`` plus a content fingerprint, so a spec fully
  identifies the computation without holding live objects.
* :class:`ExperimentGrid` — an engine that executes a sequence of specs,
  optionally fanning them out over a :class:`ProcessPoolExecutor`
  (``n_jobs``), with results returned **in submission order** regardless
  of completion order.  Identical specs are deduplicated within a call
  and across calls through a content-keyed cache (in-memory always; on
  disk when ``cache_dir`` is set or ``REPRO_GRID_CACHE`` is exported).

The cache key covers the kernel fingerprint, machine encoding, scheduler
name, threshold, iteration overrides and the locality analyzer's
fingerprint, so two sweeps sharing cells — e.g. ``figure5`` and
``figure6`` both normalizing against the Unified reference — never
recompute them.  Cache entries are invalidated implicitly: any change to
a kernel's structure, a machine parameter, the analyzer configuration or
:data:`CACHE_VERSION` changes the key.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import threading
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..cme.locality import (
    LocalityAnalyzer,
    default_analyzer,
    locality_fingerprint,
)
from ..engine.pipeline import CellOutcome, CellPipeline
from ..engine.plan import (
    ExecutionPlanner,
    PlanTask,
    SimulateBatch,
    run_analyze_task,
    run_schedule_task,
    run_simulate_batch,
)
from ..engine.result import RunResult
from ..engine.stages import CellRequest
from ..engine.stagestore import StageStore, kernel_fingerprint, machine_key
from ..ir.builder import Kernel
from ..machine.config import MachineConfig
from ..simulator import DEFAULT_SIM_ENGINE, WarmStateStore, validate_sim_engine
from ..steady import validate_steady_mode
from ..workloads.suite import SPEC_KERNELS, kernel_by_name

__all__ = [
    "CACHE_VERSION",
    "CellSpec",
    "GridStats",
    "ExperimentGrid",
    "kernel_fingerprint",
    "locality_fingerprint",
    "machine_key",
    "machine_from_key",
]

#: Bump to invalidate every existing cache entry (schema or semantics
#: changes in the schedule/simulate pipeline).
CACHE_VERSION = 4

#: Environment variable providing a default on-disk cache directory.
CACHE_ENV_VAR = "REPRO_GRID_CACHE"

ProgressCallback = Callable[[int, int, "CellSpec", str], None]


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
# ``kernel_fingerprint`` and ``machine_key`` now live in
# ``repro.engine.stagestore`` (the stages consult them too) and are
# re-exported here for compatibility — this module remains their
# harness-facing home.


def machine_from_key(key: str) -> MachineConfig:
    """Rebuild the machine a :func:`machine_key` string describes."""
    return MachineConfig.from_dict(json.loads(key))


# ----------------------------------------------------------------------
# Cell specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellSpec:
    """One ``kernel × machine × scheduler × threshold`` experiment cell.

    Instances are hashable (usable as dict keys / dedup targets) and
    JSON-serializable (:meth:`to_json` / :meth:`from_json`).  Build them
    with :meth:`of`, which captures the kernel content fingerprint and
    the machine encoding.
    """

    kernel: str
    machine: str  # canonical machine_key() JSON
    scheduler: str
    threshold: float
    kernel_fp: str
    n_iterations: Optional[int] = None
    n_times: Optional[int] = None
    #: Steady-state detector selection (results are bit-identical across
    #: modes, but the cache key distinguishes them so mode comparisons —
    #: e.g. the fig6-steady-ablation scenario — never serve one mode's
    #: timing run from another mode's cache entry).
    steady: str = "auto"
    #: Simulate engine (results are bit-identical across engines; keyed
    #: for the same reason as ``steady`` — engine A/B timing runs must
    #: never serve each other's cache entries).
    sim: str = DEFAULT_SIM_ENGINE

    def __post_init__(self) -> None:
        validate_steady_mode(self.steady)
        validate_sim_engine(self.sim)

    @classmethod
    def of(
        cls,
        kernel: Union[Kernel, str],
        machine: MachineConfig,
        scheduler: str,
        threshold: float,
        n_iterations: Optional[int] = None,
        n_times: Optional[int] = None,
        steady: str = "auto",
        sim: str = DEFAULT_SIM_ENGINE,
    ) -> "CellSpec":
        if isinstance(kernel, str):
            kernel = kernel_by_name(kernel)
        return cls(
            kernel=kernel.name,
            machine=machine_key(machine),
            scheduler=scheduler,
            threshold=float(threshold),
            kernel_fp=kernel_fingerprint(kernel),
            n_iterations=n_iterations,
            n_times=n_times,
            steady=steady,
            sim=sim,
        )

    @property
    def machine_name(self) -> str:
        return json.loads(self.machine)["name"]

    def build_machine(self) -> MachineConfig:
        return machine_from_key(self.machine)

    def cache_key(self, locality_fp: str) -> str:
        """Content hash naming this cell's cache entry."""
        material = "|".join(
            (
                f"v{CACHE_VERSION}",
                self.kernel,
                self.kernel_fp,
                self.machine,
                self.scheduler,
                repr(self.threshold),
                repr(self.n_iterations),
                repr(self.n_times),
                self.steady,
                self.sim,
                locality_fp,
            )
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def to_json(self) -> str:
        return json.dumps(
            {
                "kernel": self.kernel,
                "machine": json.loads(self.machine),
                "scheduler": self.scheduler,
                "threshold": self.threshold,
                "kernel_fp": self.kernel_fp,
                "n_iterations": self.n_iterations,
                "n_times": self.n_times,
                "steady": self.steady,
                "sim": self.sim,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "CellSpec":
        data = json.loads(text)
        return cls(
            kernel=data["kernel"],
            machine=json.dumps(
                data["machine"], sort_keys=True, separators=(",", ":")
            ),
            scheduler=data["scheduler"],
            threshold=data["threshold"],
            kernel_fp=data["kernel_fp"],
            n_iterations=data["n_iterations"],
            n_times=data["n_times"],
            steady=data.get("steady", "auto"),
            sim=data.get("sim", DEFAULT_SIM_ENGINE),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.kernel}@{self.machine_name} "
            f"{self.scheduler} thr={self.threshold:.2f}"
        )


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class GridStats:
    """Where each requested cell came from (one engine instance)."""

    requested: int = 0
    computed: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    deduplicated: int = 0
    #: Wall-clock seconds per pipeline stage, summed over computed cells
    #: (workers report their stage timings back with each result).
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Planner counters accumulated over plan-executed ``run`` calls:
    #: cells planned, unique/executed task counts per stage, batch
    #: shapes (see :meth:`ExecutionPlanner.plan`).  Empty when every
    #: call used the per-cell path.
    plan: Dict[str, int] = field(default_factory=dict)

    def add_stage_seconds(self, seconds: Mapping[str, float]) -> None:
        for stage, value in seconds.items():
            self.stage_seconds[stage] = (
                self.stage_seconds.get(stage, 0.0) + value
            )

    def add_plan_counters(self, counters: Mapping[str, int]) -> None:
        for key, value in counters.items():
            if key.endswith("_max"):
                self.plan[key] = max(self.plan.get(key, 0), value)
            else:
                self.plan[key] = self.plan.get(key, 0) + value

    def reset(self) -> None:
        self.requested = 0
        self.computed = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.deduplicated = 0
        self.stage_seconds = {}
        self.plan = {}


def _execute_cell(
    spec: CellSpec,
    kernel: Kernel,
    locality: LocalityAnalyzer,
    exact: bool = False,
    warm_store: Optional[WarmStateStore] = None,
    stage_store: Optional[StageStore] = None,
) -> CellOutcome:
    """Execute one cell through the engine pipeline (serial path)."""
    return CellPipeline().run(
        CellRequest(
            kernel=kernel,
            machine=spec.build_machine(),
            scheduler=spec.scheduler,
            threshold=spec.threshold,
            locality=locality,
            n_iterations=spec.n_iterations,
            n_times=spec.n_times,
            exact=exact,
            steady=spec.steady,
            sim=spec.sim,
            warm_store=warm_store,
            stage_store=stage_store,
        )
    )


#: Per-worker analyzer installed by :func:`_init_worker`.  Shipping the
#: analyzer once per worker (instead of once per task) lets its CME memo
#: accumulate across the cells that worker executes.  The warm-state
#: store travels the same way: its in-memory entries accumulated before
#: fan-out arrive pre-primed, and its disk layer (when enabled) lets the
#: workers share warm-ups discovered *during* the sweep.  The stage
#: store's in-memory layer arrives pre-primed too; each task ships its
#: fresh entries back with its result (:meth:`StageStore.drain`) so the
#: parent — and through it, later runs — sees every worker's products.
_WORKER_LOCALITY: Optional[LocalityAnalyzer] = None
_WORKER_EXACT: bool = False
_WORKER_WARM: Optional[WarmStateStore] = None
_WORKER_STAGES: Optional[StageStore] = None


def _init_worker(
    locality: LocalityAnalyzer,
    exact: bool = False,
    warm_store: Optional[WarmStateStore] = None,
    stage_store: Optional[StageStore] = None,
) -> None:
    global _WORKER_LOCALITY, _WORKER_EXACT, _WORKER_WARM, _WORKER_STAGES
    _WORKER_LOCALITY = locality
    _WORKER_EXACT = exact
    _WORKER_WARM = warm_store
    _WORKER_STAGES = stage_store


def _execute_cell_pooled(
    spec: CellSpec, kernel: Kernel
) -> Tuple[RunResult, Dict[str, float], Optional[Dict[str, Dict[str, object]]]]:
    """Pool entry point; ships the result, per-stage timings and the
    stage-store delta (fresh entries + counters) back to the parent."""
    if _WORKER_LOCALITY is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process missing its locality analyzer")
    outcome = _execute_cell(
        spec,
        kernel,
        _WORKER_LOCALITY,
        _WORKER_EXACT,
        _WORKER_WARM,
        _WORKER_STAGES,
    )
    delta = _WORKER_STAGES.drain() if _WORKER_STAGES is not None else None
    return outcome.result, outcome.report.stage_seconds, delta


def _plan_schedule_pooled(
    task: PlanTask, kernel: Kernel, machine: MachineConfig
) -> Tuple[object, float]:
    """Pool entry point for one unique schedule task.

    Workers only *compute* — the parent stores every product into the
    stage store itself, in plan order, so the store's counters match
    the per-cell path exactly (one miss at plan time, one store here).
    """
    if _WORKER_LOCALITY is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process missing its locality analyzer")
    start = time.perf_counter()
    schedule = run_schedule_task(task, kernel, machine, _WORKER_LOCALITY)
    return schedule, time.perf_counter() - start


def _plan_simulate_batch_pooled(
    batch: SimulateBatch, schedules: Dict[str, object]
) -> Tuple[List[object], float]:
    """Pool entry point for one simulate batch (compute-only; the
    parent stores the products — see :func:`_plan_schedule_pooled`)."""
    start = time.perf_counter()
    results = run_simulate_batch(batch, schedules, _WORKER_WARM)
    return results, time.perf_counter() - start


class ExperimentGrid:
    """Executes :class:`CellSpec` grids, in parallel, with caching.

    Parameters
    ----------
    locality:
        The analyzer every cell uses (default: the paper's sampling CME).
        Its fingerprint is part of the cache key.
    n_jobs:
        Worker processes.  ``1`` (default) runs serially in-process;
        results are identical either way — cells are deterministic and
        results are returned in submission order.
    cache:
        ``False`` disables all caching (every run recomputes).
    cache_dir:
        Directory for the on-disk cache layer.  Defaults to
        ``$REPRO_GRID_CACHE`` when exported, else in-memory caching only.
    kernels:
        Optional name → :class:`Kernel` registry for kernels that are not
        part of the SPECfp95 suite; suite kernels resolve automatically.
    progress:
        ``callback(done, total, spec, source)`` invoked once per
        requested cell with ``source`` in ``{"computed", "memory",
        "disk", "dedup"}``.
    exact:
        ``True`` runs every cell with the simulator's steady-state
        memoization disabled.  Results are bit-identical either way (the
        cache key is deliberately execution-strategy-agnostic); the flag
        exists for benchmarking and paranoia runs.
    warm:
        ``True`` (default) shares detector-confirmed post-warm-up memory
        state between cells whose schedules land byte-identical (a
        :class:`~repro.simulator.WarmStateStore` keyed by
        ``Schedule.fingerprint()`` × geometry × steady mode).  The
        store's disk layer lives under ``cache_dir/warm`` and is active
        only while caching is enabled; with ``cache=False`` the store
        still deduplicates warm-ups *within* this run, in memory.
        ``False`` disables warm-state reuse entirely.  Results are
        bit-identical either way: adoption re-proves replay soundness
        against the consuming run's own address tables.
    stage_store:
        ``True`` (default) shares per-stage results between cells
        through a content-addressed :class:`~repro.engine.StageStore`:
        analyze products keyed by loop × analyzer config, schedules by
        kernel × machine × scheduler × threshold × analyzer, and
        simulations by ``Schedule.fingerprint()`` × engine × steady mode
        × iteration overrides — so cells differing only in steady mode
        or simulate engine reuse one schedule, and cells whose schedules
        land byte-identical (neighbouring thresholds) skip simulate
        entirely.  The store's disk layer lives under
        ``cache_dir/stages`` and is active only while caching is
        enabled; with ``cache=False`` it still dedups *within* this
        grid, in memory.  ``False`` disables stage-level reuse; results
        are bit-identical either way.
    cell_cache:
        Separate control over the *whole-cell* result layer.  ``None``
        (default) follows ``cache``.  ``False`` with ``cache=True``
        keeps the trace/warm/stage stores (including their disk layers)
        while disabling whole-cell memoization — the experiment service
        runs this way, so every job's cells execute through the pipeline
        and its per-job telemetry shows exactly which stage products the
        persistent stores served.
    plan:
        ``True`` (default) executes non-cached cells through an explicit
        :class:`~repro.engine.plan.StagePlan`: the planner dedups
        analyze/schedule/simulate work *up front* by the stage store's
        key families, dispatches only the unique tasks (co-batching
        same-kernel simulations through the vectorized engine) and
        assembles every cell's result from the shared products.
        Requires the stage store; ``exact`` runs and store-less grids
        fall back to the per-cell path automatically.  ``False``
        (``--no-plan``) always uses the per-cell path.  Results —
        values, ordering and store telemetry — are bit-identical either
        way.
    """

    def __init__(
        self,
        locality: Optional[LocalityAnalyzer] = None,
        n_jobs: int = 1,
        cache: bool = True,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        kernels: Optional[Mapping[str, Kernel]] = None,
        progress: Optional[ProgressCallback] = None,
        exact: bool = False,
        warm: bool = True,
        stage_store: bool = True,
        cell_cache: Optional[bool] = None,
        plan: bool = True,
    ):
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.plan_enabled = plan
        self.locality = (
            locality if locality is not None else default_analyzer()
        )
        self.n_jobs = n_jobs
        self.exact = exact
        self.cache_enabled = cache
        self.cell_cache_enabled = (
            cache if cell_cache is None else (cache and cell_cache)
        )
        if cache_dir is None:
            env_dir = os.environ.get(CACHE_ENV_VAR)
            cache_dir = pathlib.Path(env_dir) if env_dir else None
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else None
        self.progress = progress
        self.stats = GridStats()
        self._memory: Dict[str, RunResult] = {}
        # Guards the in-memory cell cache, the kernel registry and the
        # stats counters: one grid may serve several threads (the
        # experiment service submits jobs concurrently).  Cell
        # *computation* runs outside the lock — only the bookkeeping
        # around it is serialized.
        self._lock = threading.RLock()
        self._kernels: Dict[str, Kernel] = dict(kernels or {})
        self._locality_fp = locality_fingerprint(self.locality)
        warm_dir = (
            self.cache_dir / "warm"
            if (cache and self.cache_dir is not None)
            else None
        )
        self.warm_store: Optional[WarmStateStore] = (
            WarmStateStore(cache_dir=warm_dir) if warm else None
        )
        stages_dir = (
            self.cache_dir / "stages"
            if (cache and self.cache_dir is not None)
            else None
        )
        self.stage_store: Optional[StageStore] = (
            StageStore(cache_dir=stages_dir) if stage_store else None
        )

    # ------------------------------------------------------------------
    # Kernel resolution
    # ------------------------------------------------------------------
    def register(self, kernels: Sequence[Kernel]) -> None:
        """Make non-suite kernels resolvable by the specs naming them."""
        with self._lock:
            for kernel in kernels:
                self._kernels[kernel.name] = kernel

    def _resolve_kernel(self, spec: CellSpec) -> Kernel:
        with self._lock:
            kernel = self._kernels.get(spec.kernel)
            if kernel is None:
                if spec.kernel not in SPEC_KERNELS:
                    raise KeyError(
                        f"cannot resolve kernel {spec.kernel!r}: not in "
                        f"the suite and not registered on this grid"
                    )
                kernel = kernel_by_name(spec.kernel)
                self._kernels[spec.kernel] = kernel
        actual = kernel_fingerprint(kernel)
        if actual != spec.kernel_fp:
            raise ValueError(
                f"kernel {spec.kernel!r} content mismatch: spec expects "
                f"fingerprint {spec.kernel_fp}, resolved kernel has "
                f"{actual} (register the right kernel object)"
            )
        return kernel

    # ------------------------------------------------------------------
    # Cache layers
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[pathlib.Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def _disk_load(self, key: str) -> Optional[RunResult]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
            if not isinstance(result, RunResult):
                raise ValueError("foreign object in cell cache")
            return result
        except Exception:
            # Corrupt / truncated / foreign entry: a cache must never
            # turn disk rot into a failed sweep.  Drop the file so the
            # recomputed result can take its slot cleanly.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_store(self, key: str, result: RunResult) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique temp name: concurrent processes sharing a cache dir must
        # not clobber each other's in-flight writes before the rename.
        tmp = path.with_name(
            f".{path.stem}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        )
        with tmp.open("wb") as handle:
            pickle.dump(result, handle)
        tmp.replace(path)  # atomic within one filesystem

    def clear_cache(self) -> None:
        """Drop the in-memory layer and delete on-disk entries.

        Clears the warm-state and stage stores too: their entries key
        off ``CACHE_VERSION``-independent content hashes, but "clear the
        cache" means *all* derived state under ``cache_dir`` — cells,
        traces, warm states and per-stage results alike.
        """
        with self._lock:
            self._memory.clear()
        if self.cache_dir is not None and self.cache_dir.exists():
            for path in self.cache_dir.glob("*/*.pkl"):
                path.unlink(missing_ok=True)
        if self.warm_store is not None:
            self.warm_store.clear_memory()
            self.warm_store.clear_disk()
        if self.stage_store is not None:
            self.stage_store.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(self, spec: CellSpec) -> RunResult:
        return self.run([spec])[0]

    def run(self, specs: Sequence[CellSpec]) -> List[RunResult]:
        """Execute the grid; results align with ``specs`` by index.

        Duplicate specs execute once.  Cached cells (memory, then disk)
        are returned without recomputation; the rest run serially or on a
        process pool depending on ``n_jobs``.
        """
        specs = list(specs)
        with self._lock:
            self.stats.requested += len(specs)
        total = len(specs)
        done = 0
        results: Dict[CellSpec, RunResult] = {}
        pending: List[Tuple[CellSpec, str]] = []
        seen: Dict[CellSpec, None] = {}

        def report(spec: CellSpec, source: str) -> None:
            nonlocal done
            done += 1
            if self.progress is not None:
                self.progress(done, total, spec, source)

        for spec in specs:
            if spec in seen:
                with self._lock:
                    self.stats.deduplicated += 1
                report(spec, "dedup")
                continue
            seen[spec] = None
            key = spec.cache_key(self._locality_fp)
            if self.cell_cache_enabled:
                with self._lock:
                    hit = self._memory.get(key)
                    if hit is not None:
                        self.stats.memory_hits += 1
                if hit is not None:
                    results[spec] = hit
                    report(spec, "memory")
                    continue
                hit = self._disk_load(key)
                if hit is not None:
                    with self._lock:
                        self.stats.disk_hits += 1
                        self._memory[key] = hit
                    results[spec] = hit
                    report(spec, "disk")
                    continue
            pending.append((spec, key))

        if pending:
            computed = self._compute(pending, report)
            for (spec, key), result in zip(pending, computed):
                results[spec] = result
                if self.cell_cache_enabled:
                    with self._lock:
                        self._memory[key] = result
                    self._disk_store(key, result)

        with self._lock:
            self.stats.computed += len(pending)
        return [results[spec] for spec in specs]

    def _compute(
        self,
        pending: Sequence[Tuple[CellSpec, str]],
        report: Callable[[CellSpec, str], None],
    ) -> List[RunResult]:
        if (
            self.plan_enabled
            and self.stage_store is not None
            and not self.exact
        ):
            return self._compute_plan(pending, report)
        kernels = [self._resolve_kernel(spec) for spec, _key in pending]
        if self.n_jobs == 1 or len(pending) == 1:
            out = []
            for (spec, _key), kernel in zip(pending, kernels):
                outcome = _execute_cell(
                    spec, kernel, self.locality, self.exact,
                    self.warm_store, self.stage_store,
                )
                with self._lock:
                    self.stats.add_stage_seconds(
                        outcome.report.stage_seconds
                    )
                out.append(outcome.result)
                report(spec, "computed")
            return out
        # Cross-cell trace sharing: build every pending kernel's CME
        # address trace once in the parent, so the analyzer pickled into
        # each worker arrives pre-warmed instead of every worker
        # re-walking the iteration spaces (the traces and memos are
        # content-addressed, hence safe to ship across processes).
        prime = getattr(self.locality, "prime", None)
        if prime is not None:
            for kernel in {kernel.name: kernel for kernel in kernels}.values():
                prime(kernel.loop)
        workers = min(self.n_jobs, len(pending))
        results: List[Optional[RunResult]] = [None] * len(pending)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(
                self.locality,
                self.exact,
                self.warm_store,
                self.stage_store,
            ),
        ) as pool:
            futures = {
                pool.submit(_execute_cell_pooled, spec, kernel): index
                for index, ((spec, _key), kernel) in enumerate(
                    zip(pending, kernels)
                )
            }
            not_done = set(futures)
            while not_done:
                finished, not_done = wait(
                    not_done, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    index = futures[future]
                    result, stage_seconds, delta = future.result()
                    results[index] = result
                    with self._lock:
                        self.stats.add_stage_seconds(stage_seconds)
                    if delta is not None and self.stage_store is not None:
                        # Content-addressed entries: first-wins merge is
                        # deterministic regardless of completion order.
                        self.stage_store.merge(delta)
                    report(pending[index][0], "computed")
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Plan-based execution
    # ------------------------------------------------------------------
    def _compute_plan(
        self,
        pending: Sequence[Tuple[CellSpec, str]],
        report: Callable[[CellSpec, str], None],
    ) -> List[RunResult]:
        """Execute the pending cells through an explicit stage plan.

        The planner dedups work up front by the stage store's key
        families; only the *unique* tasks run (serially or on the
        pool), the parent stores each product once, and every cell's
        result is assembled from the shared products — value- and
        telemetry-identical to the per-cell path.
        """
        specs = [spec for spec, _key in pending]
        kernels: Dict[str, Kernel] = {}
        for spec in specs:
            kernels[spec.kernel] = self._resolve_kernel(spec)
        assert self.stage_store is not None
        store = self.stage_store
        planner = ExecutionPlanner(self.locality, store)
        plan = planner.plan(specs, kernels)

        pool: Optional[ProcessPoolExecutor] = None

        def ensure_pool() -> ProcessPoolExecutor:
            nonlocal pool
            if pool is None:
                # Trace-prime the analyzer before it is pickled into
                # the workers (idempotent after the analyze wave).
                prime = getattr(self.locality, "prime", None)
                if prime is not None:
                    for kernel in kernels.values():
                        prime(kernel.loop)
                pool = ProcessPoolExecutor(
                    max_workers=self.n_jobs,
                    initializer=_init_worker,
                    initargs=(
                        self.locality,
                        self.exact,
                        self.warm_store,
                        self.stage_store,
                    ),
                )
            return pool

        try:
            # Analyze wave: cheap, shared, and the pickled-to-workers
            # analyzer must carry the traces — run it in the parent.
            for task in plan.analyze_tasks:
                start = time.perf_counter()
                run_analyze_task(
                    task,
                    kernels[str(task.payload["kernel"])],
                    self.locality,
                    store,
                )
                with self._lock:
                    self.stats.add_stage_seconds(
                        {"analyze": time.perf_counter() - start}
                    )

            # Schedule wave: unique tasks only; the parent stores every
            # product in plan order (deterministic store contents).
            produced: List[Optional[object]] = [None] * len(
                plan.schedule_tasks
            )
            if self.n_jobs > 1 and len(plan.schedule_tasks) > 1:
                sched_pool = ensure_pool()
                futures = {
                    sched_pool.submit(
                        _plan_schedule_pooled,
                        task,
                        kernels[str(task.payload["kernel"])],
                        machine_from_key(str(task.payload["machine"])),
                    ): index
                    for index, task in enumerate(plan.schedule_tasks)
                }
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        schedule, seconds = future.result()
                        produced[futures[future]] = schedule
                        with self._lock:
                            self.stats.add_stage_seconds(
                                {"schedule": seconds}
                            )
            else:
                for index, task in enumerate(plan.schedule_tasks):
                    start = time.perf_counter()
                    produced[index] = run_schedule_task(
                        task,
                        kernels[str(task.payload["kernel"])],
                        machine_from_key(str(task.payload["machine"])),
                        self.locality,
                    )
                    with self._lock:
                        self.stats.add_stage_seconds(
                            {"schedule": time.perf_counter() - start}
                        )
            for task, schedule in zip(plan.schedule_tasks, produced):
                store.store("schedule", task.key, schedule)
                plan.schedules[task.key] = schedule

            # Simulate wave: keys need the materialized schedules'
            # fingerprints, so this pass plans, dedups and batches now.
            planner.plan_simulate(plan)
            batch_results: Dict[str, List[object]] = {}
            if self.n_jobs > 1 and len(plan.simulate_tasks) > 1:
                sim_pool = ensure_pool()
                futures = {}
                for batch in plan.batches:
                    needed = {
                        str(task.payload["schedule_key"]): plan.schedules[
                            str(task.payload["schedule_key"])
                        ]
                        for task in batch.tasks
                    }
                    futures[
                        sim_pool.submit(
                            _plan_simulate_batch_pooled, batch, needed
                        )
                    ] = batch.batch_id
                not_done = set(futures)
                while not_done:
                    finished, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        results_list, seconds = future.result()
                        batch_results[futures[future]] = results_list
                        with self._lock:
                            self.stats.add_stage_seconds(
                                {"simulate": seconds}
                            )
            else:
                for batch in plan.batches:
                    start = time.perf_counter()
                    batch_results[batch.batch_id] = run_simulate_batch(
                        batch, plan.schedules, self.warm_store
                    )
                    with self._lock:
                        self.stats.add_stage_seconds(
                            {"simulate": time.perf_counter() - start}
                        )
            for batch in plan.batches:
                for task, result in zip(
                    batch.tasks, batch_results[batch.batch_id]
                ):
                    store.store("simulate", task.key, result)
                    plan.simulations[task.key] = result
        finally:
            if pool is not None:
                pool.shutdown()

        # Assembly: submission order, one result per pending cell.
        out: List[RunResult] = []
        for node in plan.assembly:
            out.append(planner.assemble(node, plan))
            report(node.spec, "computed")
        with self._lock:
            self.stats.add_plan_counters(plan.counters)
        return out
