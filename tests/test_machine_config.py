"""Unit tests for repro.machine.config."""

import pytest

from repro.ir.operations import FUType, OpClass
from repro.machine.config import (
    DEFAULT_LATENCIES,
    BusConfig,
    CacheConfig,
    ClusterConfig,
    MachineConfig,
)


def _cluster(**overrides):
    params = dict(
        n_integer=2,
        n_fp=2,
        n_memory=2,
        n_registers=32,
        cache=CacheConfig(size=4096),
    )
    params.update(overrides)
    return ClusterConfig(**params)


def _machine(n_clusters=2, **overrides):
    params = dict(
        name="test",
        clusters=(_cluster(),) * n_clusters,
        register_bus=BusConfig(count=2, latency=1),
        memory_bus=BusConfig(count=1, latency=1),
    )
    params.update(overrides)
    return MachineConfig(**params)


class TestCacheConfig:
    def test_defaults(self):
        cache = CacheConfig(size=4096)
        assert cache.n_lines == 128
        assert cache.n_sets == 128

    def test_size_must_be_line_multiple(self):
        with pytest.raises(ValueError):
            CacheConfig(size=100, line_size=32)

    def test_associativity_divides_lines(self):
        CacheConfig(size=4096, associativity=2)
        with pytest.raises(ValueError):
            CacheConfig(size=96, line_size=32, associativity=2)

    def test_set_index_wraps(self):
        cache = CacheConfig(size=1024, line_size=32)  # 32 sets
        assert cache.set_index(0) == 0
        assert cache.set_index(32) == 1
        assert cache.set_index(1024) == 0
        assert cache.set_index(1056) == 1

    def test_tag(self):
        cache = CacheConfig(size=1024, line_size=32)
        assert cache.tag(0) == 0
        assert cache.tag(1024) == 1
        assert cache.tag(2048 + 64) == 2

    def test_line_address(self):
        cache = CacheConfig(size=1024, line_size=32)
        assert cache.line_address(37) == 32
        assert cache.line_address(32) == 32

    def test_set_associative_sets(self):
        cache = CacheConfig(size=1024, line_size=32, associativity=2)
        assert cache.n_sets == 16

    def test_mshr_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1024, mshr_entries=0)


class TestBusConfig:
    def test_unbounded(self):
        bus = BusConfig(count=None, latency=2)
        assert bus.unbounded

    def test_bounded(self):
        assert not BusConfig(count=2, latency=1).unbounded

    def test_count_validation(self):
        with pytest.raises(ValueError):
            BusConfig(count=0, latency=1)

    def test_latency_validation(self):
        with pytest.raises(ValueError):
            BusConfig(count=1, latency=0)


class TestClusterConfig:
    def test_issue_width(self):
        assert _cluster().issue_width == 6

    def test_n_units(self):
        cluster = _cluster(n_integer=1, n_fp=2, n_memory=3)
        assert cluster.n_units(FUType.INTEGER) == 1
        assert cluster.n_units(FUType.FP) == 2
        assert cluster.n_units(FUType.MEMORY) == 3

    def test_needs_some_unit(self):
        with pytest.raises(ValueError):
            _cluster(n_integer=0, n_fp=0, n_memory=0)

    def test_zero_of_one_kind_allowed(self):
        cluster = _cluster(n_integer=0)
        assert cluster.n_units(FUType.INTEGER) == 0

    def test_negative_units_rejected(self):
        with pytest.raises(ValueError):
            _cluster(n_fp=-1)

    def test_registers_validated(self):
        with pytest.raises(ValueError):
            _cluster(n_registers=0)


class TestMachineConfig:
    def test_aggregates(self):
        machine = _machine(2)
        assert machine.n_clusters == 2
        assert machine.issue_width == 12
        assert machine.total_registers == 64
        assert machine.total_cache_size == 8192

    def test_is_unified(self):
        assert _machine(1).is_unified
        assert not _machine(2).is_unified

    def test_needs_clusters(self):
        with pytest.raises(ValueError):
            _machine(0)

    def test_latency_lookup(self):
        machine = _machine()
        assert machine.latency(OpClass.LOAD) == DEFAULT_LATENCIES[OpClass.LOAD]

    def test_missing_latency_rejected(self):
        partial = {OpClass.LOAD: 2}
        with pytest.raises(ValueError, match="latencies missing"):
            _machine(latencies=partial)

    def test_miss_latency_composition(self):
        machine = _machine(
            memory_bus=BusConfig(count=1, latency=3), main_memory_latency=10
        )
        assert machine.miss_latency == (
            machine.latency(OpClass.LOAD) + 3 + 10
        )

    def test_with_buses_copies(self):
        machine = _machine()
        faster = machine.with_buses(register_bus=BusConfig(count=4, latency=1))
        assert faster.register_bus.count == 4
        assert machine.register_bus.count == 2
        assert faster.memory_bus == machine.memory_bus

    def test_describe_keys(self):
        desc = _machine().describe()
        assert desc["clusters"] == 2
        assert desc["issue_width"] == 12
