"""Reuse analysis for affine references (the CME front-end).

Classifies the reuse every reference exhibits over a loop nest, following
the taxonomy the Cache Miss Equations framework is built on:

* **self-temporal** — the reference touches the same element on successive
  iterations of some loop (a zero coefficient for that loop's variable),
* **self-spatial** — successive iterations touch the same cache line
  (innermost stride smaller than the line size),
* **group** — two *uniformly generated* references (identical coefficient
  structure) touch elements a constant distance apart, so one can reuse
  lines the other brought in.  Group reuse is the property the motivating
  example exploits (LD1/LD3 and LD2/LD4, Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.loop import Loop
from ..ir.operations import Operation
from ..ir.references import ArrayReference

__all__ = [
    "ReuseInfo",
    "innermost_stride",
    "self_temporal",
    "self_spatial",
    "group_pairs",
    "analyze_reuse",
]


def innermost_stride(ref: ArrayReference, loop: Loop) -> int:
    """Byte distance between consecutive innermost iterations' accesses."""
    inner = loop.inner
    point_a = {dim.var: dim.lower for dim in loop.dims}
    point_b = dict(point_a)
    point_b[inner.var] = point_a[inner.var] + inner.step
    return ref.address(point_b) - ref.address(point_a)


def self_temporal(ref: ArrayReference, loop: Loop) -> bool:
    """True when the innermost loop revisits the same element."""
    return innermost_stride(ref, loop) == 0


def self_spatial(ref: ArrayReference, loop: Loop, line_size: int) -> bool:
    """True when consecutive iterations stay within one cache line."""
    stride = abs(innermost_stride(ref, loop))
    return 0 < stride < line_size


def group_pairs(
    refs: Sequence[ArrayReference], loop: Loop, line_size: int
) -> List[Tuple[int, int, int]]:
    """Pairs of reference indices with group reuse.

    Returns ``(leader, follower, byte_distance)`` triples: ``follower``
    can reuse data brought in by ``leader`` because the two are uniformly
    generated and a constant number of bytes apart.  ``byte_distance`` is
    the absolute address gap at any iteration point.
    """
    pairs: List[Tuple[int, int, int]] = []
    probe = {dim.var: dim.lower for dim in loop.dims}
    for i, a in enumerate(refs):
        for j in range(i + 1, len(refs)):
            b = refs[j]
            if not a.is_uniformly_generated_with(b):
                continue
            gap = abs(b.address(probe) - a.address(probe))
            leader, follower = (i, j) if a.address(probe) <= b.address(probe) else (j, i)
            pairs.append((leader, follower, gap))
    return pairs


@dataclass(frozen=True)
class ReuseInfo:
    """Summary of the reuse a single reference exhibits."""

    stride: int
    temporal: bool
    spatial: bool
    group_leaders: Tuple[int, ...]  # indices of refs this one reuses from

    @property
    def expected_self_miss_ratio(self) -> float:
        """Miss ratio ignoring interference (the CME 'compulsory' part)."""
        if self.temporal:
            return 0.0
        return 1.0  # refined by line-size division in the analytic model


def analyze_reuse(
    refs: Sequence[ArrayReference], loop: Loop, line_size: int
) -> List[ReuseInfo]:
    """Per-reference reuse classification for a set of references."""
    leaders: Dict[int, List[int]] = {}
    for leader, follower, gap in group_pairs(refs, loop, line_size):
        if gap < line_size * 2:  # close enough to share or chain cache lines
            leaders.setdefault(follower, []).append(leader)
    infos: List[ReuseInfo] = []
    for index, ref in enumerate(refs):
        infos.append(
            ReuseInfo(
                stride=innermost_stride(ref, loop),
                temporal=self_temporal(ref, loop),
                spatial=self_spatial(ref, loop, line_size),
                group_leaders=tuple(leaders.get(index, ())),
            )
        )
    return infos
