"""Memory dependence analysis for affine references.

The builder DSL lets kernels declare memory-ordering edges explicitly
(:meth:`~repro.ir.builder.LoopBuilder.mem_dep`); this module derives them
automatically for affine references, the way a compiler front-end would:

* for every pair of references to the same array where at least one is a
  store, decide whether two (possibly distinct) iterations can touch the
  same address,
* *uniformly generated* pairs are solved exactly: the per-dimension
  constant distances must be produced by an integer iteration offset,
  which also yields the exact dependence distance,
* other same-array pairs fall back to a GCD (Banerjee-style) independence
  test per dimension; pairs that cannot be disproven get a conservative
  distance-0 edge plus a distance-1 loop-carried edge.

Dependence kinds follow program order: store→load is ``mem`` (the
scheduler serializes by a cycle), load→store is ``anti`` (same-cycle
issue allowed in a VLIW), store→store is ``mem``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .ddg import DepEdge
from .loop import Loop
from .references import ArrayReference

__all__ = ["analyze_memory_dependences", "may_alias", "exact_distance"]

#: Dependences farther apart than this many innermost iterations are
#: dropped — they cannot constrain a modulo schedule whose II * distance
#: already exceeds any latency.
_MAX_RELEVANT_DISTANCE = 64


def exact_distance(
    a: ArrayReference, b: ArrayReference, loop: Loop
) -> Optional[int]:
    """Innermost-iteration offset ``d`` with ``b(i + d) == a(i)``, if any.

    Only meaningful for uniformly generated pairs; returns ``None`` when
    the references never touch the same element at a constant offset.
    """
    if not a.is_uniformly_generated_with(b):
        return None
    inner = loop.inner.var
    distance: Optional[int] = None
    for sub_a, sub_b in zip(a.subscripts, b.subscripts):
        delta = sub_a.constant - sub_b.constant
        coeff = sub_b.coeff(inner)
        if coeff == 0:
            if delta != 0:
                # Constant mismatch in a dimension the innermost loop
                # does not move: the references never coincide...
                # unless an outer variable moves it, which uniform
                # generation rules out for constant offsets.
                return None
            continue
        if delta % coeff != 0:
            return None
        candidate = delta // coeff
        if distance is None:
            distance = candidate
        elif distance != candidate:
            return None
    return 0 if distance is None else distance


def _gcd_test(a: ArrayReference, b: ArrayReference) -> bool:
    """GCD independence test; True when the pair *may* alias.

    Per dimension, ``a_sub(i) = b_sub(j)`` has integer solutions only if
    gcd of all variable coefficients divides the constant difference.
    """
    for sub_a, sub_b in zip(a.subscripts, b.subscripts):
        coeffs = [c for _v, c in sub_a.coeffs] + [c for _v, c in sub_b.coeffs]
        delta = sub_b.constant - sub_a.constant
        if not coeffs:
            if delta != 0:
                return False
            continue
        divisor = math.gcd(*(abs(c) for c in coeffs))
        if divisor and delta % divisor != 0:
            return False
    return True


def may_alias(a: ArrayReference, b: ArrayReference, loop: Loop) -> bool:
    """Can two references touch the same address at some iteration pair?"""
    if a.array.name != b.array.name:
        # Distinct arrays can still overlap in the flat address space
        # when their extents collide; the builder packs them disjointly,
        # so distinct names never alias here.
        overlap = not (
            a.array.base + a.array.size_bytes <= b.array.base
            or b.array.base + b.array.size_bytes <= a.array.base
        )
        return overlap
    distance = exact_distance(a, b, loop)
    if distance is not None:
        return True
    if a.is_uniformly_generated_with(b):
        # Uniform but no integer offset: provably disjoint streams.
        return False
    return _gcd_test(a, b)


def _edge_kind(src_is_store: bool, dst_is_store: bool) -> str:
    if not src_is_store and dst_is_store:
        return "anti"
    return "mem"


def analyze_memory_dependences(
    loop: Loop, max_distance: int = _MAX_RELEVANT_DISTANCE
) -> List[DepEdge]:
    """Derive memory dependence edges among a loop's memory operations.

    Returns edges suitable for :func:`~repro.ir.ddg.build_ddg`'s
    ``extra_edges``.  Edges beyond ``max_distance`` iterations are
    dropped as irrelevant to modulo scheduling.
    """
    mem_ops = list(loop.memory_operations)
    position = {op.name: index for index, op in enumerate(loop.operations)}
    edges: List[DepEdge] = []
    for i, op_a in enumerate(mem_ops):
        ref_a = loop.ref_of(op_a)
        for op_b in mem_ops[i:]:
            ref_b = loop.ref_of(op_b)
            if not (op_a.is_store or op_b.is_store):
                continue  # load-load pairs impose no ordering
            if op_a.name == op_b.name:
                # A store conflicting with itself across iterations
                # (e.g. subscripts that revisit an element).
                if op_a.is_store:
                    distance = _self_conflict_distance(ref_a, loop)
                    if distance is not None and 0 < distance <= max_distance:
                        edges.append(
                            DepEdge(op_a.name, op_a.name, "mem", distance)
                        )
                continue
            if not may_alias(ref_a, ref_b, loop):
                continue
            first, second = op_a, op_b
            if position[first.name] > position[second.name]:
                first, second = second, first
            ref_first = loop.ref_of(first)
            ref_second = loop.ref_of(second)
            distance = exact_distance(ref_first, ref_second, loop)
            if distance is None:
                # Could not solve exactly: conservative same-iteration
                # and next-iteration ordering.
                edges.append(
                    DepEdge(
                        first.name,
                        second.name,
                        _edge_kind(first.is_store, second.is_store),
                        0,
                    )
                )
                edges.append(DepEdge(second.name, first.name, "mem", 1))
                continue
            if distance >= 0:
                # `second` at iteration i+distance touches what `first`
                # touched at i: first -> second carried by `distance`.
                if distance <= max_distance:
                    edges.append(
                        DepEdge(
                            first.name,
                            second.name,
                            _edge_kind(first.is_store, second.is_store),
                            distance,
                        )
                    )
            else:
                # The conflict runs against program order: second(i) and
                # first(i + |distance|): second -> first carried.
                if -distance <= max_distance:
                    edges.append(
                        DepEdge(
                            second.name,
                            first.name,
                            _edge_kind(second.is_store, first.is_store),
                            -distance,
                        )
                    )
    return edges


def _self_conflict_distance(
    ref: ArrayReference, loop: Loop
) -> Optional[int]:
    """Smallest positive iteration distance at which ``ref`` revisits an
    address (None for strictly moving references)."""
    inner = loop.inner.var
    if all(sub.coeff(inner) == 0 for sub in ref.subscripts):
        return 1  # invariant store: conflicts with itself every iteration
    return None
