"""The asyncio experiment server: routes, streaming, lifecycles.

:class:`ExperimentServer` glues the pieces together: the
:mod:`~repro.service.http` layer parses requests off asyncio streams,
the :class:`~repro.service.jobs.JobManager` owns the persistent grids
and runs the work, and this module maps URLs to both.  The event loop
never blocks on experiment work — jobs execute on the manager's worker
thread, and the one long-lived response shape (the NDJSON event stream)
polls the job's event list with short sleeps instead of crossing the
thread boundary with loop plumbing.

Endpoints::

    GET  /health               liveness probe
    GET  /scenarios            the scenario registry (shared serializer)
    GET  /stats                service-wide job/grid/store telemetry
    POST /jobs                 submit {"scenario": name | "spec": {...},
                               "steady": ..., "sim": ...}
    GET  /jobs                 every job, in submission order
    GET  /jobs/<id>            one job's summary
    GET  /jobs/<id>/result     the result payload (409 until terminal)
    GET  /jobs/<id>/events     NDJSON progress stream (?cursor=N to
                               resume, ?follow=0 to replay-and-close)
    GET  /jobs/<id>/export     artifact download (?format=npz|csv)

Two entry points: :func:`run_server` blocks a process on the service
(the ``repro serve`` CLI), and :class:`ServerThread` runs one on an
ephemeral port inside a daemon thread (the end-to-end tests and any
embedding caller).
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Optional

from ..harness.scenarios import scenario_listing
from .export import EXPORT_FORMATS, export_records
from .http import (
    HttpError,
    HttpRequest,
    read_request,
    send_bytes,
    send_json,
    send_ndjson_line,
    start_ndjson_stream,
)
from .jobs import Job, JobManager

__all__ = ["ExperimentServer", "ServerThread", "run_server"]

#: How often the event stream re-checks a job's list for fresh events.
#: Worker-thread appends land between polls; 50 ms keeps streams snappy
#: without measurable load.
EVENT_POLL_SECONDS = 0.05

_EXPORT_CONTENT_TYPES = {"npz": "application/octet-stream", "csv": "text/csv"}


class ExperimentServer:
    """One service instance: a job manager behind an asyncio listener."""

    def __init__(
        self,
        manager: Optional[JobManager] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.manager = manager if manager is not None else JobManager()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (resolving ``port=0`` to the real port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self._dispatch(request, writer)
            except HttpError as exc:
                await send_json(
                    writer, exc.status, {"error": exc.message}
                )
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # a handler bug must not kill the loop
                await send_json(
                    writer,
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer went away mid-response; nothing left to tell it
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError lands here when the server is torn down
                # mid-connection; the transport is going away regardless.
                pass

    async def _dispatch(self, request: HttpRequest, writer) -> None:
        path = request.path.rstrip("/") or "/"
        method = request.method
        if path == "/health" and method == "GET":
            await send_json(writer, 200, {"ok": True})
            return
        if path == "/scenarios" and method == "GET":
            await send_json(writer, 200, scenario_listing())
            return
        if path == "/stats" and method == "GET":
            await send_json(writer, 200, self.manager.stats())
            return
        if path == "/jobs" and method == "POST":
            try:
                job = self.manager.submit_payload(request.json())
            except (ValueError, KeyError) as exc:
                raise HttpError(400, str(exc))
            await send_json(writer, 201, job.describe())
            return
        if path == "/jobs" and method == "GET":
            await send_json(
                writer, 200, [job.describe() for job in self.manager.jobs()]
            )
            return
        if path.startswith("/jobs/"):
            parts = path.split("/")[2:]  # ["<id>"] or ["<id>", "<verb>"]
            if len(parts) in (1, 2) and method == "GET":
                try:
                    job = self.manager.job(parts[0])
                except KeyError as exc:
                    raise HttpError(404, str(exc).strip('"'))
                verb = parts[1] if len(parts) == 2 else None
                if verb is None:
                    await send_json(writer, 200, job.describe())
                    return
                if verb == "result":
                    await self._send_result(job, writer)
                    return
                if verb == "events":
                    await self._stream_events(job, request, writer)
                    return
                if verb == "export":
                    await self._send_export(job, request, writer)
                    return
        raise HttpError(404, f"no route for {method} {request.path}")

    # ------------------------------------------------------------------
    # Job endpoints
    # ------------------------------------------------------------------
    async def _send_result(self, job: Job, writer) -> None:
        if not job.is_terminal:
            raise HttpError(
                409,
                f"job {job.id} is {job.state}; the result exists only "
                f"once the job is done or failed",
            )
        payload = {
            "id": job.id,
            "state": job.state,
            "error": job.error,
            "result": job.result,
            "telemetry": job.telemetry,
        }
        await send_json(writer, 200, payload)

    async def _stream_events(
        self, job: Job, request: HttpRequest, writer
    ) -> None:
        try:
            cursor = int(request.query_value("cursor", "0"))
        except ValueError:
            raise HttpError(400, "query parameter 'cursor' must be an integer")
        follow = request.query_value("follow", "1") not in ("0", "false")
        await start_ndjson_stream(writer)
        while True:
            events, cursor, finished = job.events_since(cursor)
            for event in events:
                await send_ndjson_line(writer, event)
            if finished or not follow:
                return
            # The worker thread appends events; poll rather than plumb a
            # cross-thread wakeup into the loop.
            await asyncio.sleep(EVENT_POLL_SECONDS)

    async def _send_export(
        self, job: Job, request: HttpRequest, writer
    ) -> None:
        fmt = request.query_value("format", "npz")
        if fmt not in EXPORT_FORMATS:
            raise HttpError(
                400,
                f"unknown export format {fmt!r}; "
                f"choose from {EXPORT_FORMATS}",
            )
        if not job.is_terminal:
            raise HttpError(
                409, f"job {job.id} is {job.state}; nothing to export yet"
            )
        if not job.export_records:
            raise HttpError(
                409, f"job {job.id} {job.state} without result records"
            )
        records = job.export_records

        def _render() -> bytes:
            with tempfile.TemporaryDirectory(prefix="repro-export-") as tmp:
                path = export_records(
                    records, Path(tmp) / f"{job.id}.{fmt}", fmt
                )
                return path.read_bytes()

        # Rendering hits the filesystem and (for npz) compresses — do it
        # off the loop.
        body = await asyncio.get_running_loop().run_in_executor(None, _render)
        await send_bytes(writer, 200, body, _EXPORT_CONTENT_TYPES[fmt])


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_server(
    host: str = "127.0.0.1",
    port: int = 8642,
    manager: Optional[JobManager] = None,
    announce=print,
) -> None:
    """Run the service until interrupted (the ``repro serve`` body)."""
    server = ExperimentServer(manager=manager, host=host, port=port)

    async def _main() -> None:
        await server.start()
        if announce is not None:
            announce(f"repro service listening on {server.url}")
        await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        server.manager.shutdown(wait=False)


class ServerThread:
    """A live service on an ephemeral port, inside a daemon thread.

    The test- and embedding-facing entry::

        with ServerThread() as service:
            client = ServiceClient(service.url)
            ...

    ``__enter__`` returns once the listener is bound (so ``.url`` is
    ready); ``__exit__`` cancels the loop and joins the thread.
    """

    def __init__(
        self,
        manager: Optional[JobManager] = None,
        host: str = "127.0.0.1",
    ):
        self.server = ExperimentServer(manager=manager, host=host, port=0)
        self.manager = self.server.manager
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    @property
    def url(self) -> str:
        return self.server.url

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._failure is not None:
            raise RuntimeError(
                "experiment service failed to start"
            ) from self._failure
        if not self._ready.is_set():
            raise RuntimeError("experiment service did not start in time")
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def _main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:
                self._failure = exc
                raise
            finally:
                self._ready.set()
            await self.server.serve_forever()

        try:
            self._loop.run_until_complete(_main())
        except (asyncio.CancelledError, RuntimeError):
            pass
        finally:
            self._ready.set()  # never leave __enter__ hanging
            self._loop.close()

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(
                lambda: [task.cancel() for task in asyncio.all_tasks(self._loop)]
            )
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.manager.shutdown(wait=False)
